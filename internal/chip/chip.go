// Package chip is a structural model of the PCM chip datapath the paper
// builds on (its Figure 6, the Samsung prototype plus the added Tetris
// Write logic): the X136 write buffer (128 data bits + 8 flip bits), the
// 0/1 counters feeding the Reg0/Reg1 register file, the analyzer, the
// FSM0/FSM1 pair, the DMUX and the redesigned write driver on the write
// path; GYDEC, sense amplifiers, the DOUT buffer and the synchronous
// burst domain on the read path.
//
// Unlike the behavioral scheme in package tetris — which computes a whole
// pulse plan in one step — this model advances tick by tick and moves
// data between latched stages, so the test suite can prove the two
// EQUIVALENT: the same cells get pulsed, the per-tick current never
// exceeds the chip budget, and the array ends in the same state.
//
// The write-control domain ticks at twice the memory bus clock (the
// prototype's DDR interface), which makes every interval of interest a
// whole number of ticks with the default timing: Tset = 344 ticks,
// sub-write-unit pitch = 43 ticks, Treset = 43 ticks (42.4 rounded up to
// the tick grid).
package chip

import (
	"fmt"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
)

// Chip models one x16 PCM chip: 8 data units of 16 cells plus a flip
// cell each, and the control logic in front of them.
type Chip struct {
	par pcm.Params

	// Cell state, per data unit.
	cells [8]uint16
	flips [8]bool

	// Tick bookkeeping.
	tickLen units.Duration

	stats Stats
}

// Stats counts datapath activity.
type Stats struct {
	Reads       int64
	Writes      int64
	SetPulses   int64
	ResetPulses int64
	PeakCurrent int
	Ticks       int64
}

// New creates a chip with the given parameters. Only the single-chip
// geometry is meaningful here: ChipWidthBits must be 16 and the chip
// sees 8 data units (a 16-byte slice of the bank's line).
func New(par pcm.Params) (*Chip, error) {
	if par.ChipWidthBits != 16 {
		return nil, fmt.Errorf("chip: structural model is built for x16 parts, got x%d", par.ChipWidthBits)
	}
	if err := par.Validate(); err != nil {
		return nil, err
	}
	return &Chip{
		par:     par,
		tickLen: par.MemClock.Period() / 2, // DDR write-control domain
	}, nil
}

// Stats returns the datapath counters.
func (c *Chip) Stats() Stats { return c.stats }

// ticksOf converts a duration to control ticks, rounding up.
func (c *Chip) ticksOf(d units.Duration) int64 {
	return int64((d + c.tickLen - 1) / c.tickLen)
}

// Logical returns the decoded 16 bytes the chip currently stores.
func (c *Chip) Logical() []byte {
	out := make([]byte, 16)
	for u := 0; u < 8; u++ {
		w := c.cells[u]
		if c.flips[u] {
			w = ^w
		}
		out[2*u] = byte(w)
		out[2*u+1] = byte(w >> 8)
	}
	return out
}

// wordOf extracts data unit u's logical word from a 16-byte chip image.
func wordOf(img []byte, u int) uint16 {
	return uint16(img[2*u]) | uint16(img[2*u+1])<<8
}

// ReadResult reports a structural read.
type ReadResult struct {
	Data  []byte
	Ticks int64 // total ticks: GYDEC + array access + DOUT + burst out
}

// Read walks the read path: GYDEC column decode (1 bus cycle = 2 ticks),
// array access (TRead), DOUT latch (2 ticks), then the synchronous burst
// domain shifts out 8 words at one bus cycle each.
func (c *Chip) Read() ReadResult {
	c.stats.Reads++
	ticks := int64(2)               // GYDEC
	ticks += c.ticksOf(c.par.TRead) // cells -> S/A
	ticks += 2                      // DOUT latch
	ticks += 8 * 2                  // 8-word burst, one bus cycle per word
	c.stats.Ticks += ticks
	return ReadResult{Data: c.Logical(), Ticks: ticks}
}

// pulse is one in-flight programming pulse on the cell array.
type pulse struct {
	unit     int
	kind     schemes.PulseKind
	mask     uint16
	flipCell bool
	endTick  int64
	current  int
}

// WriteResult reports a structural write.
type WriteResult struct {
	ReadTicks    int64 // read-before-write
	AnalyzeTicks int64
	WriteTicks   int64 // programming phase
	Result       int   // write units used (FSM1 slots)
	SubResult    int   // extra sub-write-units (FSM0 overflow slots)
}

// TotalTicks returns the end-to-end occupancy.
func (r WriteResult) TotalTicks() int64 { return r.ReadTicks + r.AnalyzeTicks + r.WriteTicks }

// Write drives the full write path for a 16-byte chip-slice update:
//
//  1. the write buffer latches the incoming 136 bits;
//  2. the array is read and the 0/1 counters latch each unit's SET/RESET
//     counts into Reg0/Reg1 while the inversion decision is made;
//  3. the analyzer packs the work (the paper's Algorithm 2, synthesized
//     from the same source as the behavioral packer);
//  4. FSM1 and FSM0 walk their queues tick by tick, selecting units via
//     the DMUX and handing write signals to the driver;
//  5. the driver's PROG-enable gating pulses exactly the changed cells.
//
// It returns the slot dimensions and updates the cell array.
func (c *Chip) Write(data []byte) (WriteResult, error) {
	if len(data) != 16 {
		return WriteResult{}, fmt.Errorf("chip: write of %d bytes, want 16", len(data))
	}
	c.stats.Writes++
	var res WriteResult
	res.ReadTicks = c.ticksOf(c.par.TRead)

	// Stage 2: read-modify analysis. The counters operate on the encoded
	// array bits; the read stage picks the encoding.
	regs := tetris.NewRegFile(8, 8)
	type unitPlan struct {
		uc tetris.UnitCounts
	}
	var plans [8]unitPlan
	in1 := make([]int, 8)
	in0 := make([]int, 8)
	for u := 0; u < 8; u++ {
		stored := bitutil.FlipWord{Bits: c.cells[u], Flip: c.flips[u]}
		uc := tetris.ReadStage(stored, wordOf(data, u), 16, false)
		plans[u] = unitPlan{uc: uc}
		if err := regs.Latch(u, uc.N1(), uc.N0()); err != nil {
			return WriteResult{}, fmt.Errorf("chip: Reg0/Reg1 latch: %w", err)
		}
		in1[u] = regs.N1(u) * c.par.CurrentSet
		in0[u] = regs.N0(u) * c.par.CurrentReset
	}

	// Stage 3: analyzer.
	res.AnalyzeTicks = 2 * int64(tetris.DefaultAnalysisCycles)
	minResult := 0
	for u := 0; u < 8; u++ {
		if plans[u].uc.FlipSet {
			minResult = 1
		}
	}
	pk := tetris.Packer{
		Budget: c.par.ChipBudget, K: c.par.K(),
		Cost1: c.par.CurrentSet, Cost0: c.par.CurrentReset,
		MinResult: minResult,
	}
	sched := pk.Pack(in1, in0)
	for u := 0; u < 8; u++ {
		if plans[u].uc.FlipReset && len(sched.Write0[u]) == 0 &&
			sched.Result == 0 && sched.SubResult == 0 {
			sched.SubResult = 1
		}
	}
	res.Result, res.SubResult = sched.Result, sched.SubResult

	// Stage 4+5: tick-stepped FSMs and driver.
	tsetTicks := c.ticksOf(c.par.TSet)
	pitchTicks := tsetTicks / int64(c.par.K())
	tresetTicks := c.ticksOf(c.par.TReset)
	if tresetTicks > pitchTicks {
		tresetTicks = pitchTicks // the sub-slot grid bounds the pulse
	}
	res.WriteTicks = int64(sched.Result)*tsetTicks + int64(sched.SubResult)*pitchTicks

	subStart := func(slot int) int64 {
		if slot < sched.Result*sched.K {
			return int64(slot/sched.K)*tsetTicks + int64(slot%sched.K)*pitchTicks
		}
		return int64(sched.Result)*tsetTicks + int64(slot-sched.Result*sched.K)*pitchTicks
	}

	// Build the tick-indexed issue list from the FSM queues.
	var active []pulse
	issue := func(p pulse) { active = append(active, p) }
	for u := 0; u < 8; u++ {
		uc := plans[u].uc
		// FSM1: write-1 groups. Split allocations pulse subsets of the
		// unit's SET cells in allocation order, exactly like the
		// behavioral emission.
		setCells := uc.Tr.Sets
		taken := 0
		for _, a := range sched.Write1[u] {
			n := a.Amount / c.par.CurrentSet
			mask := takeBits(setCells, taken, n)
			taken += n
			start := int64(a.Slot) * tsetTicks
			drv := tetris.Drive(tetris.DriverInput{
				Stored: c.cells[u], Incoming: uc.Enc.Bits, Signal: schemes.Set,
			})
			mask &= drv.Pulsed // PROG-enable gating
			issue(pulse{unit: u, kind: schemes.Set, mask: mask,
				endTick: start + tsetTicks, current: bitutil.PopCount16(mask) * c.par.CurrentSet})
		}
		if uc.FlipSet {
			slot := 0
			if len(sched.Write1[u]) > 0 {
				slot = sched.Write1[u][0].Slot
			}
			issue(pulse{unit: u, kind: schemes.Set, flipCell: true,
				endTick: int64(slot)*tsetTicks + tsetTicks})
		}
		// FSM0: write-0 groups.
		resetCells := uc.Tr.Resets
		taken = 0
		for _, a := range sched.Write0[u] {
			n := a.Amount / c.par.CurrentReset
			mask := takeBits(resetCells, taken, n)
			taken += n
			start := subStart(a.Slot)
			drv := tetris.Drive(tetris.DriverInput{
				Stored: c.cells[u], Incoming: uc.Enc.Bits, Signal: schemes.Reset,
			})
			mask &= drv.Pulsed
			issue(pulse{unit: u, kind: schemes.Reset, mask: mask,
				endTick: start + tresetTicks, current: bitutil.PopCount16(mask) * c.par.CurrentReset})
		}
		if uc.FlipReset {
			start := int64(0)
			if len(sched.Write0[u]) > 0 {
				start = subStart(sched.Write0[u][0].Slot)
			}
			issue(pulse{unit: u, kind: schemes.Reset, flipCell: true,
				endTick: start + tresetTicks})
		}
	}

	// Verify the per-tick current by sweeping before touching any cell.
	peak := c.sweepPeak(active, tsetTicks, tresetTicks)
	if peak > c.par.ChipBudget {
		return WriteResult{}, fmt.Errorf("chip: schedule draws %d, budget %d", peak, c.par.ChipBudget)
	}
	if peak > c.stats.PeakCurrent {
		c.stats.PeakCurrent = peak
	}

	for _, p := range active {
		if p.kind == schemes.Set {
			c.cells[p.unit] |= p.mask
			if p.flipCell {
				c.flips[p.unit] = true
			}
			c.stats.SetPulses += int64(bitutil.PopCount16(p.mask))
			if p.flipCell {
				c.stats.SetPulses++
			}
		} else {
			c.cells[p.unit] &^= p.mask
			if p.flipCell {
				c.flips[p.unit] = false
			}
			c.stats.ResetPulses += int64(bitutil.PopCount16(p.mask))
			if p.flipCell {
				c.stats.ResetPulses++
			}
		}
	}
	c.stats.Ticks += res.TotalTicks()
	return res, nil
}

// sweepPeak computes the maximum simultaneous current of the pulse set.
func (c *Chip) sweepPeak(active []pulse, tsetTicks, tresetTicks int64) int {
	type edge struct {
		at    int64
		delta int
	}
	var edges []edge
	for _, p := range active {
		start := p.endTick
		if p.kind == schemes.Set {
			start -= tsetTicks
		} else {
			start -= tresetTicks
		}
		edges = append(edges, edge{start, p.current}, edge{p.endTick, -p.current})
	}
	// Insertion-sort by time, releases first on ties.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && (edges[j].at < edges[j-1].at ||
			(edges[j].at == edges[j-1].at && edges[j].delta < edges[j-1].delta)); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// takeBits returns a mask of up to n set bits of mask, skipping the
// first `skip` set bits — the DMUX offset selection.
func takeBits(mask uint16, skip, n int) uint16 {
	var out uint16
	seen, taken := 0, 0
	for b := 0; b < 16 && taken < n; b++ {
		if mask&(1<<b) == 0 {
			continue
		}
		if seen < skip {
			seen++
			continue
		}
		out |= 1 << b
		taken++
	}
	return out
}
