package chip

import (
	"math"
	"math/rand"
	"testing"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/tetris"
)

// chipParams returns a single-x16-chip configuration: 16-byte lines, no
// GCP (one chip has nothing to share with).
func chipParams() pcm.Params {
	p := pcm.DefaultParams()
	p.NumChips = 1
	p.LineBytes = 16
	p.GlobalChargePump = false
	return p
}

func TestNewValidation(t *testing.T) {
	p := chipParams()
	p.ChipWidthBits = 8
	p.LineBytes = 8
	if _, err := New(p); err == nil {
		t.Error("x8 part accepted by the x16 structural model")
	}
	p = chipParams()
	p.LineBytes = 0
	if _, err := New(p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestReadPathTiming(t *testing.T) {
	c, err := New(chipParams())
	if err != nil {
		t.Fatal(err)
	}
	r := c.Read()
	// 2 (GYDEC) + 40 (50ns at 1.25ns ticks) + 2 (DOUT) + 16 (burst).
	if r.Ticks != 60 {
		t.Errorf("read ticks = %d, want 60", r.Ticks)
	}
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("fresh chip reads nonzero")
		}
	}
}

// TestStructuralBehavioralEquivalence drives identical random write
// sequences through the structural datapath and the behavioral Tetris
// scheme and checks, write by write: same stored logical data, same slot
// dimensions (write units), same pulse counts.
func TestStructuralBehavioralEquivalence(t *testing.T) {
	par := chipParams()
	c, err := New(par)
	if err != nil {
		t.Fatal(err)
	}
	beh := tetris.New(par)
	arr := newMirror()
	rng := rand.New(rand.NewSource(77))
	old := make([]byte, 16)
	next := make([]byte, 16)
	var pulsesBefore int64
	for step := 0; step < 400; step++ {
		copy(next, old)
		switch step % 4 {
		case 0:
			for i := 0; i < 1+rng.Intn(6); i++ {
				b := rng.Intn(128)
				next[b/8] ^= 1 << (b % 8)
			}
		case 1:
			rng.Read(next)
		case 2:
			for i := range next {
				next[i] = ^old[i]
			}
		case 3: // silent
		}

		plan := beh.PlanWrite(0, old, next)
		st := c.Stats()
		pulsesBefore = st.SetPulses + st.ResetPulses
		res, err := c.Write(next)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		// Same logical contents.
		got := c.Logical()
		if bitutil.HammingBytes(got, next) != 0 {
			t.Fatalf("step %d: structural chip stores wrong data", step)
		}

		// Same write-unit dimensions (Equation 5 metric).
		structWU := float64(res.Result) + float64(res.SubResult)/float64(par.K())
		if math.Abs(structWU-plan.WriteUnits()) > 1e-9 {
			t.Fatalf("step %d: structural %.3f write units, behavioral %.3f",
				step, structWU, plan.WriteUnits())
		}

		// Same pulse counts.
		bs, br := plan.Counts()
		st = c.Stats()
		gotPulses := st.SetPulses + st.ResetPulses - pulsesBefore
		if gotPulses != int64(bs+br) {
			t.Fatalf("step %d: structural pulsed %d cells, behavioral %d",
				step, gotPulses, bs+br)
		}
		arr.apply(next)
		copy(old, next)
	}
	if c.Stats().PeakCurrent > par.ChipBudget {
		t.Fatalf("peak current %d exceeded budget", c.Stats().PeakCurrent)
	}
	if c.Stats().PeakCurrent == 0 {
		t.Fatal("no current ever drawn")
	}
}

// mirror is a trivial golden model of the logical contents.
type mirror struct{ data []byte }

func newMirror() *mirror            { return &mirror{data: make([]byte, 16)} }
func (m *mirror) apply(next []byte) { copy(m.data, next) }

func TestWriteValidation(t *testing.T) {
	c, _ := New(chipParams())
	if _, err := c.Write(make([]byte, 8)); err == nil {
		t.Error("short write accepted")
	}
}

func TestWriteTickBudgetNeverExceeded(t *testing.T) {
	// Tiny budget: the packer must serialize and the sweep must stay
	// within budget for every random write.
	par := chipParams()
	par.ChipBudget = 6
	c, err := New(par)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	next := make([]byte, 16)
	for step := 0; step < 100; step++ {
		rng.Read(next)
		if _, err := c.Write(next); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if c.Stats().PeakCurrent > par.ChipBudget {
		t.Fatalf("peak %d > budget %d", c.Stats().PeakCurrent, par.ChipBudget)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, _ := New(chipParams())
	data := make([]byte, 16)
	data[0] = 0xFF
	if _, err := c.Write(data); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Writes != 1 || st.SetPulses == 0 {
		t.Errorf("stats = %+v", st)
	}
	c.Read()
	if c.Stats().Reads != 1 {
		t.Error("read not counted")
	}
}
