// Package power models the instantaneous current constraints of a PCM
// bank: the per-chip charge-pump budget and the bank-wide pool formed when
// a Global Charge Pump (GCP) lets chips borrow unused current from each
// other.
//
// Its central type, Profile, records every programming pulse as a
// (track, start, end, current) interval and can then report the peak
// simultaneous draw of any track or of the whole bank. The write-scheme
// test suites use it as an oracle: whatever a scheduler claims, the
// recorded pulse train must never exceed the budget at any instant.
package power

import (
	"fmt"
	"sort"

	"tetriswrite/internal/units"
)

// Pulse is one programming pulse drawn on a track (a chip) during
// [Start, End).
type Pulse struct {
	Track   int // chip index within the bank
	Start   units.Time
	End     units.Time
	Current int // in SET-current units
}

// Profile accumulates pulses for later peak analysis. The zero value is
// ready to use.
type Profile struct {
	pulses []Pulse
}

// Add records a pulse. Zero-current and zero-length pulses are ignored.
// It panics on negative current or an inverted interval, which always
// indicate a scheduler bug.
func (p *Profile) Add(track int, start, end units.Time, current int) {
	if current < 0 {
		panic("power: negative pulse current")
	}
	if end < start {
		panic(fmt.Sprintf("power: inverted pulse interval [%d, %d)", start, end))
	}
	if current == 0 || start == end {
		return
	}
	p.pulses = append(p.pulses, Pulse{Track: track, Start: start, End: end, Current: current})
}

// Len returns the number of recorded pulses.
func (p *Profile) Len() int { return len(p.pulses) }

// Pulses returns the recorded pulses in insertion order. The slice is the
// profile's own backing store; callers must not modify it.
func (p *Profile) Pulses() []Pulse { return p.pulses }

// edge is a +current at Start and a -current at End.
type edge struct {
	at    units.Time
	delta int
}

func peakOf(edges []edge) int {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		// Process releases before acquisitions at the same instant: a
		// pulse ending exactly when another starts does not overlap it.
		return edges[i].delta < edges[j].delta
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// PeakTrack returns the maximum instantaneous current ever drawn on one
// track.
func (p *Profile) PeakTrack(track int) int {
	var edges []edge
	for _, pl := range p.pulses {
		if pl.Track != track {
			continue
		}
		edges = append(edges, edge{pl.Start, pl.Current}, edge{pl.End, -pl.Current})
	}
	return peakOf(edges)
}

// PeakTotal returns the maximum instantaneous current ever drawn across
// all tracks together — the constraint a Global Charge Pump enforces.
func (p *Profile) PeakTotal() int {
	edges := make([]edge, 0, 2*len(p.pulses))
	for _, pl := range p.pulses {
		edges = append(edges, edge{pl.Start, pl.Current}, edge{pl.End, -pl.Current})
	}
	return peakOf(edges)
}

// Tracks returns the sorted list of track indices that drew any current.
func (p *Profile) Tracks() []int {
	seen := map[int]bool{}
	for _, pl := range p.pulses {
		seen[pl.Track] = true
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// End returns the latest pulse end time, i.e. when the profile's activity
// finishes. A profile with no pulses ends at time zero.
func (p *Profile) End() units.Time {
	var end units.Time
	for _, pl := range p.pulses {
		if pl.End > end {
			end = pl.End
		}
	}
	return end
}

// Budget describes the current constraints of one bank.
type Budget struct {
	PerChip int  // budget of each chip's own pump, SET-current units
	Chips   int  // chips in the bank
	GCP     bool // bank-wide sharing enabled
}

// Bank returns the total bank budget.
func (b Budget) Bank() int { return b.PerChip * b.Chips }

// Check verifies a profile against the budget. With GCP only the
// bank-level sum is constrained; without it every chip must stay within
// its own pump. A nil error means the schedule is feasible.
func (b Budget) Check(p *Profile) error {
	if total, bank := p.PeakTotal(), b.Bank(); total > bank {
		return fmt.Errorf("power: bank peak %d exceeds bank budget %d", total, bank)
	}
	if b.GCP {
		return nil
	}
	for _, tr := range p.Tracks() {
		if tr < 0 || tr >= b.Chips {
			return fmt.Errorf("power: pulse on unknown chip %d", tr)
		}
		if peak := p.PeakTrack(tr); peak > b.PerChip {
			return fmt.Errorf("power: chip %d peak %d exceeds per-chip budget %d", tr, peak, b.PerChip)
		}
	}
	return nil
}
