package power

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/units"
)

func TestEmptyProfile(t *testing.T) {
	var p Profile
	if p.PeakTotal() != 0 || p.PeakTrack(0) != 0 {
		t.Error("empty profile has nonzero peak")
	}
	if p.End() != 0 {
		t.Error("empty profile has nonzero end")
	}
	if len(p.Tracks()) != 0 {
		t.Error("empty profile has tracks")
	}
}

func TestOverlapPeaks(t *testing.T) {
	var p Profile
	p.Add(0, 0, 100, 10)
	p.Add(0, 50, 150, 5)  // overlaps the first: peak 15 on track 0
	p.Add(1, 60, 70, 100) // track 1 spike inside the overlap window
	if got := p.PeakTrack(0); got != 15 {
		t.Errorf("PeakTrack(0) = %d, want 15", got)
	}
	if got := p.PeakTrack(1); got != 100 {
		t.Errorf("PeakTrack(1) = %d, want 100", got)
	}
	if got := p.PeakTotal(); got != 115 {
		t.Errorf("PeakTotal = %d, want 115", got)
	}
	if got := p.End(); got != 150 {
		t.Errorf("End = %d, want 150", got)
	}
}

func TestBackToBackPulsesDoNotOverlap(t *testing.T) {
	var p Profile
	p.Add(0, 0, 100, 10)
	p.Add(0, 100, 200, 10) // starts exactly when the first ends
	if got := p.PeakTrack(0); got != 10 {
		t.Errorf("PeakTrack = %d, want 10 (no overlap at shared instant)", got)
	}
}

func TestZeroPulsesIgnored(t *testing.T) {
	var p Profile
	p.Add(0, 0, 100, 0)
	p.Add(0, 50, 50, 10)
	if p.Len() != 0 {
		t.Errorf("Len = %d, want 0", p.Len())
	}
}

func TestAddPanics(t *testing.T) {
	var p Profile
	for _, c := range []struct {
		name       string
		start, end units.Time
		cur        int
	}{
		{"negative current", 0, 10, -1},
		{"inverted interval", 10, 5, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			p.Add(0, c.start, c.end, c.cur)
		}()
	}
}

func TestTracks(t *testing.T) {
	var p Profile
	p.Add(3, 0, 10, 1)
	p.Add(1, 0, 10, 1)
	p.Add(3, 20, 30, 1)
	got := p.Tracks()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Tracks = %v, want [1 3]", got)
	}
}

func TestBudgetCheckPerChip(t *testing.T) {
	b := Budget{PerChip: 32, Chips: 4, GCP: false}
	var p Profile
	p.Add(0, 0, 100, 32) // exactly at budget: fine
	if err := b.Check(&p); err != nil {
		t.Errorf("at-budget schedule rejected: %v", err)
	}
	p.Add(0, 50, 60, 1) // now 33 on chip 0
	if err := b.Check(&p); err == nil {
		t.Error("over-budget chip accepted without GCP")
	}
}

func TestBudgetCheckGCPAllowsBorrowing(t *testing.T) {
	b := Budget{PerChip: 32, Chips: 4, GCP: true}
	var p Profile
	p.Add(0, 0, 100, 40) // over chip budget but under bank budget (128)
	if err := b.Check(&p); err != nil {
		t.Errorf("GCP schedule rejected: %v", err)
	}
	p.Add(1, 0, 100, 89) // bank total 129 > 128
	if err := b.Check(&p); err == nil {
		t.Error("over-bank-budget schedule accepted")
	}
}

func TestBudgetCheckUnknownChip(t *testing.T) {
	b := Budget{PerChip: 32, Chips: 4}
	var p Profile
	p.Add(7, 0, 10, 1)
	if err := b.Check(&p); err == nil {
		t.Error("pulse on chip 7 of a 4-chip bank accepted")
	}
}

// Property-style test: peak computed by the sweep equals a brute-force
// sample of the profile at every pulse boundary.
func TestPeakMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var p Profile
		for i := 0; i < 30; i++ {
			s := units.Time(rng.Intn(1000))
			e := s + units.Time(1+rng.Intn(200))
			p.Add(rng.Intn(3), s, e, 1+rng.Intn(10))
		}
		want := 0
		for _, probe := range p.Pulses() {
			at := probe.Start // sample just inside each pulse start
			sum := 0
			for _, pl := range p.Pulses() {
				if pl.Start <= at && at < pl.End {
					sum += pl.Current
				}
			}
			if sum > want {
				want = sum
			}
		}
		if got := p.PeakTotal(); got != want {
			t.Fatalf("trial %d: PeakTotal = %d, brute force = %d", trial, got, want)
		}
	}
}
