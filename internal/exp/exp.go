// Package exp is the experiment harness: one function per table and
// figure of the paper's evaluation section, each returning a plain-text
// table with the same rows and series the paper plots. Absolute numbers
// differ from the paper's GEM5 testbed; the shapes — who wins, by what
// factor, where the workload-dependent crossovers fall — are what these
// runners reproduce.
package exp

import (
	"context"
	"runtime"
	"time"

	"tetriswrite/internal/guard"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/runner"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/stats"
	"tetriswrite/internal/system"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// NamedFactory pairs a scheme factory with its display name, in the
// paper's comparison order.
type NamedFactory struct {
	Name    string
	Factory schemes.Factory
}

// SchemeSet returns the compared schemes in paper order: the DCW baseline
// first, then Flip-N-Write, 2-Stage-Write, Three-Stage-Write and Tetris
// Write.
func SchemeSet() []NamedFactory {
	return []NamedFactory{
		{"baseline", schemes.NewDCW},
		{"fnw", schemes.NewFlipNWrite},
		{"2stage", schemes.NewTwoStage},
		{"3stage", schemes.NewThreeStage},
		{"tetris", tetris.New},
	}
}

// Options configure the harness.
type Options struct {
	Params pcm.Params
	// Schemes selects the swept schemes by name — paper table labels
	// ("baseline", "2stage"), registry canonical names or composed
	// registry names ("dcw+flipmin", "adaptive") — resolved through
	// ResolveSchemes. Empty selects the full paper SchemeSet. The first
	// scheme is the normalization baseline of every figure table.
	Schemes []string
	// Writes is the number of line writes sampled per workload by the
	// chip-level experiments (Figures 3 and 10). Default 2000.
	Writes int
	// InstrBudget is the per-core instruction budget of the full-system
	// experiments (Figures 11-14). Default 400k.
	InstrBudget int64
	Cores       int
	Seed        int64
	// Sequential forces full-system simulations to run one at a time
	// (results are deterministic either way); equivalent to Parallel: 1.
	Sequential bool
	// Parallel is the number of concurrent full-system simulations;
	// 0 means GOMAXPROCS. Every cell owns its seeded state, so any
	// degree of parallelism produces bit-identical tables.
	Parallel int
	// RunTimeout bounds each full-system simulation's wall-clock time;
	// 0 means unlimited. A timed-out cell is reported in FullResults.Errs
	// and its partial statistics kept.
	RunTimeout time.Duration
	// Retries re-attempts failed cells (simulations are deterministic,
	// so this only helps with environmental failures; default 0).
	Retries int
	// Epoch, when positive, attaches the telemetry sampler to every
	// full-system run so EpochSummary can report time-series behaviour
	// per workload and scheme.
	Epoch units.Duration
	// Guard threads the runtime invariant checker through every
	// full-system run; a violation aborts that cell and surfaces in
	// FullResults.Errs.
	Guard guard.Config
	// EngineQueue selects the simulation engine's event-queue backend
	// for every full-system cell (sim.QueueWheel, the default, or
	// sim.QueueHeap). Results are bit-identical either way; the knob
	// exists for A/B benchmarking and cross-checking.
	EngineQueue sim.QueueKind
	// EngineMode selects serial or parallel (per-bank worker) execution
	// for every full-system cell. Like EngineQueue, results are
	// bit-identical either way; parallel trades goroutine overhead for
	// off-thread write planning.
	EngineMode sim.EngineMode
}

// Normalize fills defaults.
func (o *Options) Normalize() {
	if o.Params.LineBytes == 0 {
		o.Params = pcm.DefaultParams()
	}
	if o.Writes <= 0 {
		o.Writes = 2000
	}
	if o.InstrBudget <= 0 {
		o.InstrBudget = 400_000
	}
	if o.Cores <= 0 {
		o.Cores = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// writeStream replays a workload's write stream: for every sampled write
// it yields the stored (old) and incoming (new) line images, maintaining
// a device shadow exactly like the full-system simulator would.
func writeStream(prof workload.Profile, opt Options, fn func(addr pcm.LineAddr, old, new []byte)) {
	prog := workload.NewProgram(prof, opt.Cores, opt.Seed, opt.Params)
	gens := make([]*workload.Generator, opt.Cores)
	for i := range gens {
		gens[i] = prog.Generator(i)
	}
	device := linestore.NewStore(linestore.Words(opt.Params.LineBytes))
	oldBuf := make([]byte, opt.Params.LineBytes)
	stored := func(addr pcm.LineAddr) []byte {
		w := device.Get(int64(addr))
		if w == nil {
			w = device.Ensure(int64(addr))
			linestore.PackLine(w, prog.InitialContents(addr))
		}
		linestore.UnpackLine(oldBuf, w)
		return oldBuf
	}
	writes := 0
	for writes < opt.Writes {
		for _, g := range gens {
			op := g.Next()
			if !op.Write {
				continue
			}
			old := stored(op.Addr)
			fn(op.Addr, old, op.Data)
			linestore.PackLine(device.Ensure(int64(op.Addr)), op.Data)
			writes++
			if writes >= opt.Writes {
				return
			}
		}
	}
}

// Figure3 measures the number of RESET and SET operations per 64-bit
// data unit after inversion coding, per workload — the paper's
// motivating observation (avg ~9.6 bit-writes, SET-dominant).
func Figure3(opt Options) *stats.Table {
	opt.Normalize()
	tb := stats.NewTable("Figure 3: RESET/SET operations per 64-bit data unit (after inversion)",
		"workload", "RESET", "SET", "total")
	var allR, allS []float64
	nc := opt.Params.NumChips
	nu := opt.Params.DataUnits()
	wbits := opt.Params.ChipWidthBits
	wb := wbits / 8
	for _, prof := range workload.Profiles() {
		// Count with the Tetris read stage itself: per chip slice,
		// inversion then transition counting; aggregate to 64-bit units.
		flips := linestore.NewStore(1)
		var sets, resets, unitsSeen float64
		writeStream(prof, opt, func(addr pcm.LineAddr, old, new []byte) {
			slot := flips.Ensure(int64(addr))
			fw := slot[0]
			for u := 0; u < nu; u++ {
				for c := 0; c < nc; c++ {
					bit := uint(u*nc + c)
					lo := chipSlice(old, nc, wb, c, u)
					stored := flipWord(lo, fw&(1<<bit) != 0, wbits)
					uc := tetris.ReadStage(stored, chipSlice(new, nc, wb, c, u), wbits, false)
					if uc.Enc.Flip {
						fw |= 1 << bit
					} else {
						fw &^= 1 << bit
					}
					sets += float64(uc.N1())
					resets += float64(uc.N0())
				}
				unitsSeen++
			}
			slot[0] = fw
		})
		r := resets / unitsSeen
		s := sets / unitsSeen
		allR = append(allR, r)
		allS = append(allS, s)
		tb.AddRow(prof.Name, r, s, r+s)
	}
	tb.AddRow("average", stats.Mean(allR), stats.Mean(allS), stats.Mean(allR)+stats.Mean(allS))
	return tb
}

// Table3 reports the workload characteristics: domain, sharing level and
// the configured RPKI/WPKI (which the generators reproduce to within
// sampling noise; see the workload package tests).
func Table3(opt Options) *stats.Table {
	opt.Normalize()
	tb := stats.NewTable("Table III: multi-threaded workloads",
		"program", "domain", "sharing", "RPKI", "WPKI")
	for _, p := range workload.Profiles() {
		tb.AddRow(p.Name, p.Domain, p.Sharing, p.RPKI, p.WPKI)
	}
	return tb
}

// MeasureWriteUnits replays opt.Writes cache-line writes of one workload
// through a scheme and returns the mean write units per write — the
// Figure 10 measurement for one (workload, scheme) cell, also used by the
// ablation benchmarks.
func MeasureWriteUnits(prof workload.Profile, s schemes.Scheme, opt Options) float64 {
	opt.Normalize()
	var wu float64
	var n int
	writeStream(prof, opt, func(addr pcm.LineAddr, old, new []byte) {
		plan := s.PlanWrite(addr, old, new)
		wu += plan.WriteUnits()
		n++
	})
	if n == 0 {
		return 0
	}
	return wu / float64(n)
}

// Figure10 measures the average number of write units per cache-line
// write for every scheme and workload: the paper's central chip-level
// result (baseline 8, FNW 4, 2-Stage 3, Three-Stage 2.5, Tetris
// 1.06-1.46).
func Figure10(opt Options) *stats.Table {
	opt.Normalize()
	set := SchemeSet()
	cols := append([]string{"workload"}, names(set)...)
	tb := stats.NewTable("Figure 10: average number of write units", cols...)
	sums := make([]float64, len(set))
	profiles := workload.Profiles()
	for _, prof := range profiles {
		row := make([]any, 0, len(set)+1)
		row = append(row, prof.Name)
		for i, nf := range set {
			avg := MeasureWriteUnits(prof, nf.Factory(opt.Params), opt)
			sums[i] += avg
			row = append(row, avg)
		}
		tb.AddRow(row...)
	}
	avgRow := []any{"average"}
	for _, s := range sums {
		avgRow = append(avgRow, s/float64(len(profiles)))
	}
	tb.AddRow(avgRow...)
	return tb
}

// FullResults holds every full-system simulation of the sweep, indexed
// [workload][scheme] in Profiles()/SchemeSet() order.
type FullResults struct {
	Options  Options
	Profiles []workload.Profile
	Schemes  []NamedFactory
	Results  [][]system.Result

	// Errs mirrors Results: a non-nil entry means that cell failed (or
	// was skipped after a cancellation) and its Results entry holds only
	// the partial statistics gathered before the abort. All nil on a
	// clean sweep.
	Errs [][]error
}

// Failed counts the cells that did not complete.
func (fr *FullResults) Failed() int {
	n := 0
	for _, row := range fr.Errs {
		for _, err := range row {
			if err != nil {
				n++
			}
		}
	}
	return n
}

// workers resolves the configured degree of parallelism.
func (o Options) workers() int {
	switch {
	case o.Sequential:
		return 1
	case o.Parallel > 0:
		return o.Parallel
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// RunFullSystem simulates all 8 workloads under all 5 schemes — the
// sweep behind Figures 11, 12, 13 and 14.
func RunFullSystem(opt Options) (*FullResults, error) {
	return RunFullSystemCtx(context.Background(), opt)
}

// RunFullSystemCtx runs the sweep under a context through the runner
// supervisor: cells fan out across Options.workers() workers with
// per-cell panic isolation, optional retry and wall-clock timeout. On
// cancellation or per-cell failure the sweep still returns the
// FullResults holding every completed cell (failures marked in Errs)
// alongside the first error — callers render partial tables instead of
// discarding finished work.
func RunFullSystemCtx(ctx context.Context, opt Options) (*FullResults, error) {
	opt.Normalize()
	schemeSet, err := ResolveSchemes(opt.Schemes)
	if err != nil {
		return nil, err
	}
	fr := &FullResults{
		Options:  opt,
		Profiles: workload.Profiles(),
		Schemes:  schemeSet,
	}
	fr.Results = make([][]system.Result, len(fr.Profiles))
	fr.Errs = make([][]error, len(fr.Profiles))
	for i := range fr.Results {
		fr.Results[i] = make([]system.Result, len(fr.Schemes))
		fr.Errs[i] = make([]error, len(fr.Schemes))
	}
	type cell struct{ w, s int }
	var cells []cell
	var jobs []runner.Job[system.Result]
	for w := range fr.Profiles {
		for s := range fr.Schemes {
			w, s := w, s
			cells = append(cells, cell{w, s})
			jobs = append(jobs, runner.Job[system.Result]{
				Name: fr.Profiles[w].Name + "/" + fr.Schemes[s].Name,
				Run: func(ctx context.Context) (system.Result, error) {
					cfg := system.Config{
						Params:      opt.Params,
						Cores:       opt.Cores,
						InstrBudget: opt.InstrBudget,
						Seed:        opt.Seed,
						Ctrl:        memctrl.Config{},
						Epoch:       opt.Epoch,
						Guard:       opt.Guard,
						EngineQueue: opt.EngineQueue,
						EngineMode:  opt.EngineMode,
					}
					return system.RunCtx(ctx, fr.Profiles[w], fr.Schemes[s].Factory, cfg)
				},
			})
		}
	}
	results := runner.All(ctx, jobs, runner.Options{
		Workers:    opt.workers(),
		JobTimeout: opt.RunTimeout,
		Retries:    opt.Retries,
	})
	for k, r := range results {
		c := cells[k]
		res := r.Value
		res.Scheme = fr.Schemes[c.s].Name
		if r.Err != nil {
			// A skipped cell has a zero Result; keep its paper-order
			// labels so partial tables stay well-formed.
			res.Workload = fr.Profiles[c.w].Name
			fr.Errs[c.w][c.s] = r.Err
		}
		fr.Results[c.w][c.s] = res
	}
	if err := runner.FirstErr(results); err != nil {
		return fr, err
	}
	return fr, nil
}

// normalizedTable renders one metric normalized to the baseline scheme
// (column 0), with a geometric-mean summary row.
func (fr *FullResults) normalizedTable(title string, metric func(system.Result) float64, invert bool) *stats.Table {
	cols := append([]string{"workload"}, names(fr.Schemes)...)
	tb := stats.NewTable(title, cols...)
	sums := make([][]float64, len(fr.Schemes))
	for w, prof := range fr.Profiles {
		base := metric(fr.Results[w][0])
		row := []any{prof.Name}
		for s := range fr.Schemes {
			v := metric(fr.Results[w][s])
			norm := 0.0
			if base != 0 && v != 0 {
				if invert {
					norm = v / base // higher is better (IPC improvement)
				} else {
					norm = v / base // lower is better (normalized latency)
				}
			}
			sums[s] = append(sums[s], norm)
			row = append(row, norm)
		}
		tb.AddRow(row...)
	}
	avg := []any{"geomean"}
	for s := range fr.Schemes {
		avg = append(avg, stats.GeoMean(sums[s]))
	}
	tb.AddRow(avg...)
	return tb
}

// Figure11 renders read latency normalized to the baseline (lower is
// better; the paper reports Tetris at ~0.35 of baseline on average).
func (fr *FullResults) Figure11() *stats.Table {
	return fr.normalizedTable("Figure 11: read latency (normalized to baseline)",
		func(r system.Result) float64 { return float64(r.ReadLatency) }, false)
}

// Figure12 renders write latency normalized to the baseline.
func (fr *FullResults) Figure12() *stats.Table {
	return fr.normalizedTable("Figure 12: write latency (normalized to baseline)",
		func(r system.Result) float64 { return float64(r.WriteLatency) }, false)
}

// Figure13 renders IPC improvement over the baseline (higher is better;
// the paper reports 1.4X/1.6X/1.8X/2X for FNW/2SW/3SW/Tetris).
func (fr *FullResults) Figure13() *stats.Table {
	return fr.normalizedTable("Figure 13: IPC improvement over baseline",
		func(r system.Result) float64 { return r.IPC }, true)
}

// Figure14 renders application running time normalized to the baseline.
func (fr *FullResults) Figure14() *stats.Table {
	return fr.normalizedTable("Figure 14: running time (normalized to baseline)",
		func(r system.Result) float64 { return float64(r.RunningTime) }, false)
}

// EnergyTable is an extension beyond the paper's figures: per-write
// programming energy normalized to the baseline, backing Table I's
// energy-reduction claims with numbers.
func (fr *FullResults) EnergyTable() *stats.Table {
	return fr.normalizedTable("Energy per write (normalized to baseline)",
		func(r system.Result) float64 { return r.EnergyPerWrite }, false)
}

func names(set []NamedFactory) []string {
	out := make([]string, len(set))
	for i, nf := range set {
		out[i] = nf.Name
	}
	return out
}

// TailLatency renders the 99th-percentile memory read latency per
// workload and scheme — queueing tails are where slow writes hurt most,
// and the histogram resolution (~26% per bucket) is plenty to rank
// schemes.
func (fr *FullResults) TailLatency() *stats.Table {
	cols := append([]string{"workload"}, names(fr.Schemes)...)
	tb := stats.NewTable("P99 read latency (ns)", cols...)
	for w, prof := range fr.Profiles {
		row := []any{prof.Name}
		for s := range fr.Schemes {
			st := fr.Results[w][s].Ctrl
			row = append(row, st.ReadLatency.Percentile(99).Nanoseconds())
		}
		tb.AddRow(row...)
	}
	return tb
}

// SeedSpread quantifies the robustness of the headline conclusion (IPC
// improvement, Figure 13) across workload seeds: for each scheme, the
// geomean IPC improvement's mean, minimum and maximum over n seeds. The
// orderings reported in EXPERIMENTS.md must hold for every seed, not
// just the default one.
func SeedSpread(opt Options, seeds []int64) (*stats.Table, error) {
	opt.Normalize()
	set, err := ResolveSchemes(opt.Schemes)
	if err != nil {
		return nil, err
	}
	perScheme := make([][]float64, len(set))
	for _, seed := range seeds {
		o := opt
		o.Seed = seed
		fr, err := RunFullSystem(o)
		if err != nil {
			return nil, err
		}
		for s := range set {
			var ratios []float64
			for w := range fr.Profiles {
				base := fr.Results[w][0].IPC
				if base > 0 {
					ratios = append(ratios, fr.Results[w][s].IPC/base)
				}
			}
			perScheme[s] = append(perScheme[s], stats.GeoMean(ratios))
		}
	}
	tb := stats.NewTable("IPC improvement across seeds (geomean; mean/min/max)",
		"scheme", "mean", "min", "max")
	for s, nf := range set {
		vals := perScheme[s]
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		tb.AddRow(nf.Name, stats.Mean(vals), min, max)
	}
	return tb, nil
}
