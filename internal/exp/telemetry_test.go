package exp

import (
	"strings"
	"testing"

	"tetriswrite/internal/units"
)

func TestEpochSummaryAndSeries(t *testing.T) {
	opt := fastOptions()
	opt.Epoch = 20 * units.Microsecond
	fr, err := RunFullSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	tb := fr.EpochSummary()
	out := tb.String()
	for _, want := range []string{"Epoch telemetry", "wq mean", "budget util", "vips", "tetris"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "no -epoch set") {
		t.Error("summary claims no epoch despite Options.Epoch")
	}

	wq := fr.EpochSeries("vips", "tetris", "memctrl.write_queue_depth")
	if len(wq) == 0 {
		t.Fatal("no write-queue series for vips/tetris")
	}
	if fr.EpochSeries("vips", "nope", "memctrl.write_queue_depth") != nil {
		t.Error("unknown scheme returned a series")
	}
	if fr.EpochSeries("nope", "tetris", "memctrl.write_queue_depth") != nil {
		t.Error("unknown workload returned a series")
	}
}

func TestEpochSummaryWithoutEpoch(t *testing.T) {
	fr, err := RunFullSystem(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := fr.EpochSummary().String()
	if !strings.Contains(out, "no -epoch set") {
		t.Errorf("summary should flag the missing epoch:\n%s", out)
	}
	if fr.EpochSeries("vips", "tetris", "memctrl.write_queue_depth") != nil {
		t.Error("series returned without telemetry attached")
	}
}

func TestBenchTrajectory(t *testing.T) {
	opt := fastOptions()
	opt.Writes = 200
	art, err := BenchTrajectory(opt, "2026-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if art.Date != "2026-01-01" || art.Workload != "vips" || len(art.Schemes) != 5 {
		t.Fatalf("artifact header wrong: %+v", art)
	}
	// Write units are deterministic: two measurements must agree exactly.
	art2, err := BenchTrajectory(opt, "2026-01-02")
	if err != nil {
		t.Fatal(err)
	}
	for i := range art.Schemes {
		if art.Schemes[i].WriteUnits != art2.Schemes[i].WriteUnits {
			t.Errorf("%s write units nondeterministic: %v vs %v",
				art.Schemes[i].Scheme, art.Schemes[i].WriteUnits, art2.Schemes[i].WriteUnits)
		}
		if art.Schemes[i].VerifyOverheadNsPerWrite != art2.Schemes[i].VerifyOverheadNsPerWrite {
			t.Errorf("%s verify overhead nondeterministic", art.Schemes[i].Scheme)
		}
	}
	// Tetris must plan strictly fewer units than the DCW baseline.
	if art.Schemes[4].WriteUnits >= art.Schemes[0].WriteUnits {
		t.Errorf("tetris (%v) not below baseline (%v)",
			art.Schemes[4].WriteUnits, art.Schemes[0].WriteUnits)
	}
	// The end-to-end trajectory point must be populated: a real run takes
	// time and allocates.
	if art.FullSystemNsPerOp <= 0 || art.AllocsPerOp <= 0 {
		t.Errorf("full-system point missing: %v ns/op, %v allocs/op",
			art.FullSystemNsPerOp, art.AllocsPerOp)
	}
}
