package exp

import (
	"fmt"

	"tetriswrite/internal/registry"
	"tetriswrite/internal/system"
	"tetriswrite/internal/workload"
)

// This file is the assembly half of the harness: where RunFullSystemCtx
// computes a sweep in-process, these helpers let a caller that obtained
// the per-cell results elsewhere — the fleet broker collecting shard
// summaries from remote workers — rebuild the same FullResults matrix
// and render the same tables, byte for byte.

// ResolveProfiles maps workload names to their profiles, preserving the
// given order; an empty list selects all profiles in Profiles() order.
func ResolveProfiles(names []string) ([]workload.Profile, error) {
	if len(names) == 0 {
		return workload.Profiles(), nil
	}
	out := make([]workload.Profile, 0, len(names))
	for _, n := range names {
		p, err := workload.ProfileByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ResolveSchemes maps scheme names to their factories, preserving the
// given order; an empty list selects the full SchemeSet in paper order.
// Names matching a paper table label ("baseline", "2stage", ...) keep
// that label as display name, so the rendered tables stay byte-identical
// to the historical ones; everything else — canonical names, aliases and
// composed names like "dcw+flipmin" or "adaptive" — resolves through the
// scheme registry and is displayed under its canonical spelling. Unknown
// names fail with the sorted list of registered scheme and decorator
// names. Note the first resolved scheme is the normalization baseline of
// every figure table, exactly as in a direct sweep.
func ResolveSchemes(want []string) ([]NamedFactory, error) {
	set := SchemeSet()
	if len(want) == 0 {
		return set, nil
	}
	out := make([]NamedFactory, 0, len(want))
	for _, n := range want {
		found := false
		for _, nf := range set {
			if nf.Name == n {
				out = append(out, nf)
				found = true
				break
			}
		}
		if found {
			continue
		}
		e, err := registry.Default().Resolve(n)
		if err != nil {
			return nil, fmt.Errorf("exp: %w", err)
		}
		out = append(out, NamedFactory{Name: e.Name, Factory: e.Factory})
	}
	return out, nil
}

// NewFullResults allocates an empty sweep matrix over the given grid,
// ready to be filled cell by cell with SetCell. The zero cells render
// as zero rows, so a partially filled matrix produces well-formed
// partial tables — the same contract RunFullSystemCtx keeps under
// cancellation.
func NewFullResults(opt Options, profiles []workload.Profile, schemes []NamedFactory) *FullResults {
	opt.Normalize()
	fr := &FullResults{
		Options:  opt,
		Profiles: profiles,
		Schemes:  schemes,
	}
	fr.Results = make([][]system.Result, len(profiles))
	fr.Errs = make([][]error, len(profiles))
	for i := range fr.Results {
		fr.Results[i] = make([]system.Result, len(schemes))
		fr.Errs[i] = make([]error, len(schemes))
	}
	return fr
}

// SetCell stores one (workload, scheme) cell; err marks it failed. The
// labels are forced to the grid's names so tables stay well-formed even
// when res is a zero or partial Result.
func (fr *FullResults) SetCell(w, s int, res system.Result, err error) {
	res.Workload = fr.Profiles[w].Name
	res.Scheme = fr.Schemes[s].Name
	fr.Results[w][s] = res
	fr.Errs[w][s] = err
}

// CellIndex returns the matrix position of a (workload, scheme) pair,
// or ok=false when the pair is outside this grid.
func (fr *FullResults) CellIndex(workload, scheme string) (w, s int, ok bool) {
	w, s = -1, -1
	for i, p := range fr.Profiles {
		if p.Name == workload {
			w = i
			break
		}
	}
	for i, nf := range fr.Schemes {
		if nf.Name == scheme {
			s = i
			break
		}
	}
	return w, s, w >= 0 && s >= 0
}
