package exp

import (
	"fmt"
	"strconv"
	"strings"

	"tetriswrite/internal/analytic"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
)

// CheckResult is one verified qualitative claim of the reproduction.
type CheckResult struct {
	Name   string
	OK     bool
	Detail string
}

// CheckShapes runs the evaluation at the given scale and verifies the
// paper's qualitative claims — the "reproduction certificate" behind
// `tetrisbench -check`. Absolute numbers are platform-dependent; these
// checks pin the shapes: who wins, in what order, and where the
// workload-dependent exceptions fall.
func CheckShapes(opt Options) ([]CheckResult, error) {
	opt.Normalize()
	var out []CheckResult
	add := func(name string, ok bool, format string, args ...any) {
		out = append(out, CheckResult{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	// Equations 1-4: closed forms match the pulse schedulers.
	par := opt.Params
	eqOK := true
	detail := ""
	pairs := []struct {
		name string
		f    schemes.Factory
		want func(pcm.Params) any
	}{
		{"eq1", schemes.NewConventional, func(p pcm.Params) any { return analytic.Conventional(p) }},
		{"eq2", schemes.NewFlipNWrite, func(p pcm.Params) any { return analytic.FlipNWrite(p) }},
		{"eq3", schemes.NewTwoStage, func(p pcm.Params) any { return analytic.TwoStage(p) }},
		{"eq4", schemes.NewThreeStage, func(p pcm.Params) any { return analytic.ThreeStage(p) }},
	}
	old := make([]byte, par.LineBytes)
	next := make([]byte, par.LineBytes)
	for i := range next {
		next[i] = byte(i * 31)
	}
	for _, pr := range pairs {
		got := pr.f(par).PlanWrite(0, old, next).ServiceTime()
		want := pr.want(par)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			eqOK = false
			detail += fmt.Sprintf("%s: %v != %v; ", pr.name, got, want)
		}
	}
	add("equations 1-4 match implementations", eqOK, "%s", strings.TrimSuffix(detail, "; "))

	// Figure 4 worked example.
	in1, in0raw := Figure4Counts()
	in0 := make([]int, len(in0raw))
	for i, v := range in0raw {
		in0[i] = v * par.CurrentReset
	}
	pk := tetris.Packer{Budget: par.ChipBudget, K: par.K(), Cost1: par.CurrentSet, Cost0: par.CurrentReset}
	sched := pk.Pack(in1, in0)
	add("figure 4: result=2, subresult=0", sched.Result == 2 && sched.SubResult == 0,
		"result=%d subresult=%d", sched.Result, sched.SubResult)

	// Figure 3 shape.
	f3 := tableRows(Figure3(opt).String())
	avg := f3["average"]
	ok := len(avg) == 3 && avg[1] > avg[0] && avg[2] > 6 && avg[2] < 13 &&
		f3["blackscholes"][2] < f3["vips"][2]
	add("figure 3: SET-dominant, ~9.6 bits/unit, blackscholes<vips", ok,
		"avg RESET=%.2f SET=%.2f total=%.2f", avg[0], avg[1], avg[2])

	// Figure 10 shape.
	f10 := tableRows(Figure10(opt).String())
	a := f10["average"]
	ok = len(a) == 5 && a[0] == 8 && a[1] == 4 &&
		a[2] > 2.9 && a[2] <= 3.0 && a[3] > 2.4 && a[3] <= 2.5 &&
		a[4] < a[3] && a[4] >= 0.8 && a[4] <= 1.8
	add("figure 10: 8 / 4 / ~3 / ~2.5 / ~1.0-1.5 write units", ok,
		"avg = %.2f %.2f %.2f %.2f %.2f", a[0], a[1], a[2], a[3], a[4])

	// Figures 11-14: scheme ordering on the geomean.
	fr, err := RunFullSystem(opt)
	if err != nil {
		return nil, err
	}
	ordering := func(name, rendered string, increasing bool) {
		g := tableRows(rendered)["geomean"]
		okOrd := len(g) == 5 && g[0] == 1
		for i := 1; i < len(g); i++ {
			if increasing && g[i] <= g[i-1] {
				okOrd = false
			}
			if !increasing && g[i] >= g[i-1] {
				okOrd = false
			}
		}
		add(name, okOrd, "geomean = %.3f %.3f %.3f %.3f %.3f", g[0], g[1], g[2], g[3], g[4])
	}
	ordering("figure 11: read latency ordering", fr.Figure11().String(), false)
	ordering("figure 12: write latency ordering", fr.Figure12().String(), false)
	ordering("figure 13: IPC ordering", fr.Figure13().String(), true)
	ordering("figure 14: running time ordering", fr.Figure14().String(), false)

	// The paper's workload-dependent exception: read-dominant
	// blackscholes and swaptions gain almost no write latency.
	f12 := tableRows(fr.Figure12().String())
	bs, sw := f12["blackscholes"], f12["swaptions"]
	// Threshold 0.75: at small instruction budgets these workloads issue
	// only a handful of writes and the ratio is noisy; memory-bound
	// workloads sit far below at 0.25-0.65.
	ok = bs != nil && sw != nil && bs[4] > 0.75 && sw[4] > 0.75
	add("figure 12: read-dominant workloads barely improve", ok,
		"blackscholes=%.3f swaptions=%.3f (tetris column)", bs[4], sw[4])

	return out, nil
}

// tableRows extracts numeric cells per label from a rendered table.
func tableRows(out string) map[string][]float64 {
	rows := map[string][]float64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		var vals []float64
		for _, f := range fields[1:] {
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				vals = append(vals, v)
			}
		}
		if len(vals) > 0 {
			rows[fields[0]] = vals
		}
	}
	return rows
}
