package exp

import (
	"strings"
	"testing"

	"tetriswrite/internal/workload"
)

// TestCrashSweepContract is the crash-smoke anchor: a small sweep over
// the full workload × scheme grid whose three contracts (acked-write
// durability, recovery-to-intent, resume-to-oracle) are asserted inside
// CrashSweep itself — any violation surfaces as an error here.
func TestCrashSweepContract(t *testing.T) {
	opt := CrashSweepOptions{
		Options: Options{Writes: 40, Seed: 9},
		Every:   64,
		MaxCuts: 2,
	}
	res, err := CrashSweep(opt)
	if err != nil {
		t.Fatal(err)
	}

	wantCells := len(workload.Profiles()) * 6 // 5 compared schemes + conventional
	if len(res.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(res.Cells), wantCells)
	}
	var cuts, intents, classified int
	convReissues := 0
	for _, c := range res.Cells {
		if c.TotalPulses == 0 {
			t.Errorf("%s/%s: oracle counted no pulses", c.Workload, c.Scheme)
		}
		if c.Cuts == 0 {
			t.Errorf("%s/%s: no cuts on a %d-pulse run", c.Workload, c.Scheme, c.TotalPulses)
		}
		cuts += c.Cuts
		intents += c.Intents
		classified += c.Clean + c.Rollforwards + c.Reissues
		if c.Scheme == "conventional" {
			convReissues += c.Reissues
		}
	}
	if cuts == 0 || intents == 0 {
		t.Fatalf("sweep exercised %d cuts / %d intents; want both nonzero", cuts, intents)
	}
	// Every armed intent found at a cut is classified exactly once.
	if classified != intents {
		t.Errorf("classified %d of %d intents", classified, intents)
	}
	// Conventional writes every bit unconditionally: a torn line is
	// always completable by rolling the full schedule forward.
	if convReissues != 0 {
		t.Errorf("conventional classified %d reissues; its torn lines always roll forward", convReissues)
	}

	out := res.Table().String()
	for _, s := range []string{"conventional", "baseline", "fnw", "2stage", "3stage", "tetris"} {
		if !strings.Contains(out, s) {
			t.Errorf("classification table missing scheme %q:\n%s", s, out)
		}
	}
}
