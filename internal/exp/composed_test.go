package exp

import (
	"reflect"
	"strings"
	"testing"
)

// TestResolveSchemesComposed checks the registry path of ResolveSchemes:
// paper labels keep their table spelling, aliases and compositions
// resolve to canonical names, and unknown names fail with the sorted
// catalogue.
func TestResolveSchemesComposed(t *testing.T) {
	set, err := ResolveSchemes([]string{"baseline", "dcw+flipmin", "adaptive", "2stage"})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(set))
	for i, nf := range set {
		got[i] = nf.Name
	}
	// "baseline" and "2stage" are paper table labels, kept verbatim so
	// historical tables render byte-identically; registry-only names are
	// displayed canonically.
	want := []string{"baseline", "dcw+flipmin", "adaptive", "2stage"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resolved names %v, want %v", got, want)
	}

	_, err = ResolveSchemes([]string{"dwc"})
	if err == nil {
		t.Fatal("ResolveSchemes(dwc) succeeded")
	}
	for _, frag := range []string{"dcw", "tetris", "adaptive", "baseline", "flipmin", "remap", "mlc"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("unknown-scheme error omits %q: %v", frag, err)
		}
	}

	_, err = ResolveSchemes([]string{"fnw+flipmin"})
	if err == nil || !strings.Contains(err.Error(), "flip cells") {
		t.Errorf("invalid composition error = %v", err)
	}
}

// TestComposedSweepParallelIdentity is the harness-level determinism
// gate for composed schemes: a sweep restricted to registry
// compositions must produce bit-identical FullResults at Parallel 1 and
// Parallel 4. Scheme state lives per bank inside each cell's own
// simulation, so no concurrency degree may leak into the numbers.
func TestComposedSweepParallelIdentity(t *testing.T) {
	opt := fastOptions()
	opt.Schemes = []string{"dcw", "dcw+flipmin", "tetris+remap", "adaptive"}
	opt.Parallel = 1
	serial, err := RunFullSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 4
	par, err := RunFullSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Results, par.Results) {
		t.Error("composed sweep differs between Parallel=1 and Parallel=4")
	}
	if g, w := serial.Figure12().String(), par.Figure12().String(); g != w {
		t.Errorf("rendered Figure 12 differs:\nserial:\n%s\nparallel:\n%s", g, w)
	}
}
