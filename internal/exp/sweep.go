package exp

import (
	"tetriswrite/internal/stats"
	"tetriswrite/internal/workload"
)

// LineSizeSweep quantifies the paper's motivating observation about
// growing last-level cache lines (64 B commodity, 128 B POWER7, 256 B
// zEnterprise): the number of serial write units per line write for every
// scheme at each line size, averaged across the 8 workloads. The static
// schemes scale linearly with the line; Tetris Write scales with the
// actual changed bits.
func LineSizeSweep(opt Options) *stats.Table {
	opt.Normalize()
	set := SchemeSet()
	cols := append([]string{"line"}, names(set)...)
	tb := stats.NewTable("Line-size sweep: average write units per line write", cols...)
	for _, line := range []int{64, 128, 256} {
		par := opt.Params
		par.LineBytes = line
		o := opt
		o.Params = par
		row := []any{line}
		for _, nf := range set {
			var sum float64
			profs := workload.Profiles()
			for _, prof := range profs {
				sum += MeasureWriteUnits(prof, nf.Factory(par), o)
			}
			row = append(row, sum/float64(len(profs)))
		}
		tb.AddRow(row...)
	}
	return tb
}

// BudgetSweep is the mobile scenario of the paper's introduction: the
// per-chip power budget shrinks from 32 SET-currents down to 4 (the
// "4 and 2 bits" division-write regime), and the write units per line
// grow for every scheme — least for Tetris Write.
func BudgetSweep(opt Options) *stats.Table {
	opt.Normalize()
	set := SchemeSet()
	cols := append([]string{"budget"}, names(set)...)
	tb := stats.NewTable("Power-budget sweep: average write units per line write", cols...)
	for _, budget := range []int{32, 16, 8, 4} {
		par := opt.Params
		par.ChipBudget = budget
		o := opt
		o.Params = par
		row := []any{budget}
		for _, nf := range set {
			var sum float64
			profs := workload.Profiles()
			for _, prof := range profs {
				sum += MeasureWriteUnits(prof, nf.Factory(par), o)
			}
			row = append(row, sum/float64(len(profs)))
		}
		tb.AddRow(row...)
	}
	return tb
}
