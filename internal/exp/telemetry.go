package exp

import (
	"tetriswrite/internal/stats"
)

// seriesStats reduces one time series to its mean and max; zero-length
// series reduce to zeros.
func seriesStats(vals []float64) (mean, max float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
		if v > max {
			max = v
		}
	}
	return sum / float64(len(vals)), max
}

// EpochSummary condenses every run's epoch series into one row per
// workload and scheme: how deep the write queue ran, how hard the power
// budget was driven, and how often the controller fell into a drain.
// It needs Options.Epoch to have been set for the sweep; without it the
// table only carries zero epochs and says so in the title.
func (fr *FullResults) EpochSummary() *stats.Table {
	title := "Epoch telemetry: write-queue and power-budget behaviour over time"
	if fr.Options.Epoch > 0 {
		title += " (epoch " + fr.Options.Epoch.String() + ")"
	} else {
		title += " (no -epoch set: zero epochs sampled)"
	}
	tb := stats.NewTable(title,
		"workload", "scheme", "epochs", "wq mean", "wq max", "budget util", "drains")
	for w, prof := range fr.Profiles {
		for s := range fr.Schemes {
			res := fr.Results[w][s]
			var epochs int
			var wqMean, wqMax, buMean float64
			if t := res.Telemetry; t != nil {
				epochs = t.Epochs()
				wqMean, wqMax = seriesStats(t.Series("memctrl.write_queue_depth"))
				buMean, _ = seriesStats(t.Series("power.budget_util"))
			}
			tb.AddRow(prof.Name, fr.Schemes[s].Name, epochs, wqMean, wqMax, buMean, res.Ctrl.Drains)
		}
	}
	return tb
}

// EpochSeries returns one named series for a workload/scheme pair of the
// sweep, for callers that want the raw trajectory rather than the
// summary table. Returns nil when the pair is unknown or the sweep ran
// without telemetry.
func (fr *FullResults) EpochSeries(workload, scheme, series string) []float64 {
	for w, prof := range fr.Profiles {
		if prof.Name != workload {
			continue
		}
		for s := range fr.Schemes {
			if fr.Schemes[s].Name != scheme {
				continue
			}
			if t := fr.Results[w][s].Telemetry; t != nil {
				return t.Series(series)
			}
			return nil
		}
	}
	return nil
}
