package exp

import (
	"context"
	"errors"
	"testing"
	"time"

	"tetriswrite/internal/system"
)

// TestParallelSweepBitIdenticalToSerial is the supervisor's core
// promise: the same sweep run serially and with four workers renders
// byte-identical tables, because every cell owns its seeded state and
// the pool only places results positionally.
func TestParallelSweepBitIdenticalToSerial(t *testing.T) {
	opt := fastOptions()
	opt.InstrBudget = 10_000
	opt.Sequential = true
	serial, err := RunFullSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Sequential = false
	opt.Parallel = 4
	par, err := RunFullSystemCtx(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, render := range []struct {
		name string
		of   func(*FullResults) string
	}{
		{"fig11", func(fr *FullResults) string { return fr.Figure11().String() }},
		{"fig12", func(fr *FullResults) string { return fr.Figure12().String() }},
		{"fig13", func(fr *FullResults) string { return fr.Figure13().String() }},
		{"fig14", func(fr *FullResults) string { return fr.Figure14().String() }},
		{"energy", func(fr *FullResults) string { return fr.EnergyTable().String() }},
	} {
		if s, p := render.of(serial), render.of(par); s != p {
			t.Errorf("%s differs between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s",
				render.name, s, p)
		}
	}
}

// TestSweepCancellationKeepsPartials: cancelling mid-sweep returns the
// completed cells and marks the rest, instead of discarding everything.
func TestSweepCancellationKeepsPartials(t *testing.T) {
	opt := fastOptions()
	opt.InstrBudget = 10_000
	opt.Sequential = true
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancel()
	fr, err := RunFullSystemCtx(ctx, opt)
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if fr == nil {
		t.Fatal("cancelled sweep returned no partial results")
	}
	if fr.Failed() != len(fr.Profiles)*len(fr.Schemes) {
		t.Errorf("Failed() = %d, want all %d cells", fr.Failed(), len(fr.Profiles)*len(fr.Schemes))
	}
	// Partial tables still render without panicking.
	_ = fr.Figure13().String()
}

// TestSweepRunTimeout: a wall-clock budget far too small for any cell
// aborts each simulation through the context plumbing, and the errors
// carry the run fingerprints.
func TestSweepRunTimeout(t *testing.T) {
	opt := fastOptions()
	opt.InstrBudget = 50_000_000 // far more work than 1ms of wall clock
	opt.Parallel = 2
	opt.RunTimeout = time.Millisecond
	fr, err := RunFullSystemCtx(context.Background(), opt)
	if err == nil {
		t.Fatal("sweep with 1ms per-cell budget reported success")
	}
	var re *system.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *system.RunError in chain", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded in chain", err)
	}
	if fr.Failed() == 0 {
		t.Error("no cells marked failed")
	}
}

// TestSweepGuardEnabled: the guard threads through the sweep and a
// guarded sweep completes violation-free.
func TestSweepGuardEnabled(t *testing.T) {
	opt := fastOptions()
	opt.InstrBudget = 10_000
	opt.Guard.Enabled = true
	fr, err := RunFullSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Failed() != 0 {
		t.Errorf("%d cells failed under guard", fr.Failed())
	}
	checked := false
	for _, row := range fr.Results {
		for _, res := range row {
			if res.Guard != nil && res.Guard.WritePlans > 0 {
				checked = true
			}
		}
	}
	if !checked {
		t.Error("no cell reports guard activity")
	}
}
