package exp

import (
	"fmt"
	"sort"
	"strings"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/stats"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
)

func chipSlice(line []byte, nc, widthBytes, c, u int) uint16 {
	return bitutil.ChipSlice(line, nc, widthBytes, c, u)
}

func flipWord(logical uint16, flip bool, widthBits int) bitutil.FlipWord {
	if flip {
		return bitutil.FlipWord{Bits: ^logical & bitutil.WidthMask(widthBits), Flip: true}
	}
	return bitutil.FlipWord{Bits: logical}
}

// Figure4Counts returns the per-chip, per-data-unit write-1 and write-0
// counts of the paper's worked example (Section III.B / Figure 4): eight
// data units whose SET counts are 8,7,7,6,6,6,5,3 and RESET counts
// 0,1,1,2,3,2,2,5, against a per-chip budget of 32 with the RESET current
// twice the SET current.
func Figure4Counts() (in1, in0 []int) {
	in1 = []int{8, 7, 7, 6, 6, 6, 5, 3}
	in0 = []int{0, 1, 1, 2, 3, 2, 2, 5}
	return in1, in0
}

// Figure4 renders the chip-level timing comparison of Figure 4: for each
// scheme, the phases of one cache-line write of the sample data, with the
// completion times showing Tetris Write finishing first (the paper's T1 <
// T2 < T3 < T4).
func Figure4(par pcm.Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 4: chip-level timing diagram (Tset=%v, Treset=%v, Tread=%v, budget=%d/chip) ==\n\n",
		par.TSet, par.TReset, par.TRead, par.ChipBudget)

	type segment struct {
		name   string
		start  units.Duration
		end    units.Duration
		detail string
	}
	render := func(scheme string, segs []segment) units.Duration {
		var finish units.Duration
		for _, s := range segs {
			fmt.Fprintf(&b, "%-12s %-10s %10.1f -> %8.1f ns  %s\n",
				scheme, s.name, s.start.Nanoseconds(), s.end.Nanoseconds(), s.detail)
			if s.end > finish {
				finish = s.end
			}
		}
		fmt.Fprintf(&b, "%-12s COMPLETE   %28.1f ns\n\n", scheme, finish.Nanoseconds())
		return finish
	}

	tset, treset, tread := par.TSet, par.TReset, par.TRead
	nu := par.DataUnits()
	finishes := stats.NewTable("completion times", "scheme", "finish", "vs conventional")

	record := func(name string, f units.Duration, base units.Duration) {
		finishes.AddRow(name, f, float64(f)/float64(base))
	}

	// Conventional: one worst-case write unit per data unit.
	var segs []segment
	for u := 0; u < nu; u++ {
		segs = append(segs, segment{fmt.Sprintf("WU%d", u+1),
			units.Duration(u) * tset, units.Duration(u+1) * tset,
			fmt.Sprintf("unit %d, all cells", u+1)})
	}
	base := render("conventional", segs)
	record("conventional", base, base)

	// Flip-N-Write: read, then two units per write unit.
	segs = []segment{{"read", 0, tread, "read + flip decision"}}
	for i := 0; i < nu/2; i++ {
		start := tread + units.Duration(i)*tset
		segs = append(segs, segment{fmt.Sprintf("WU%d", i+1), start, start + tset,
			fmt.Sprintf("units %d,%d", 2*i+1, 2*i+2)})
	}
	record("fnw", render("fnw", segs), base)

	// 2-Stage-Write: 8 RESET slots then 2 SET slots.
	segs = nil
	for u := 0; u < nu; u++ {
		segs = append(segs, segment{fmt.Sprintf("st0-%d", u+1),
			units.Duration(u) * treset, units.Duration(u+1) * treset,
			fmt.Sprintf("write-0s of unit %d", u+1)})
	}
	s0 := units.Duration(nu) * treset
	for i := 0; i < 2; i++ {
		segs = append(segs, segment{fmt.Sprintf("st1-%d", i+1),
			s0 + units.Duration(i)*tset, s0 + units.Duration(i+1)*tset,
			fmt.Sprintf("write-1s of units %d-%d", 4*i+1, 4*i+4)})
	}
	record("2stage", render("2stage", segs), base)

	// Three-Stage-Write: read, 4 RESET slots, 2 SET slots.
	segs = []segment{{"read", 0, tread, "read + flip decision"}}
	for i := 0; i < nu/2; i++ {
		start := tread + units.Duration(i)*treset
		segs = append(segs, segment{fmt.Sprintf("st0-%d", i+1), start, start + treset,
			fmt.Sprintf("write-0s of units %d,%d", 2*i+1, 2*i+2)})
	}
	s0 = tread + units.Duration(nu/2)*treset
	for i := 0; i < 2; i++ {
		segs = append(segs, segment{fmt.Sprintf("st1-%d", i+1),
			s0 + units.Duration(i)*tset, s0 + units.Duration(i+1)*tset,
			fmt.Sprintf("write-1s of units %d-%d", 4*i+1, 4*i+4)})
	}
	record("3stage", render("3stage", segs), base)

	// Tetris Write: pack the sample counts, then lay the schedule out.
	in1, in0raw := Figure4Counts()
	in0 := make([]int, len(in0raw))
	for i, v := range in0raw {
		in0[i] = v * par.CurrentReset
	}
	pk := tetris.Packer{Budget: par.ChipBudget, K: par.K(), Cost1: par.CurrentSet, Cost0: par.CurrentReset}
	sched := pk.Pack(in1, in0)
	analysis := par.MemClock.Cycles(tetris.DefaultAnalysisCycles)
	wstart := tread + analysis
	pitch := tset / units.Duration(par.K())

	segs = []segment{
		{"read", 0, tread, "read + flip + 0/1 counting (Reg0/Reg1)"},
		{"analyze", tread, wstart, fmt.Sprintf("packing, %d cycles @ memory clock", tetris.DefaultAnalysisCycles)},
	}
	for j := 0; j < sched.Result; j++ {
		var members []string
		for u, allocs := range sched.Write1 {
			for _, a := range allocs {
				if a.Slot == j {
					members = append(members, fmt.Sprintf("u%d(%d)", u+1, a.Amount))
				}
			}
		}
		sort.Strings(members)
		start := wstart + units.Duration(j)*tset
		segs = append(segs, segment{fmt.Sprintf("WU%d", j+1), start, start + tset,
			"write-1: " + strings.Join(members, " ")})
	}
	// Write-0 sub-slot placements.
	subs := map[int][]string{}
	for u, allocs := range sched.Write0 {
		for _, a := range allocs {
			subs[a.Slot] = append(subs[a.Slot], fmt.Sprintf("u%d(%d)", u+1, a.Amount))
		}
	}
	var subSlots []int
	for s := range subs {
		subSlots = append(subSlots, s)
	}
	sort.Ints(subSlots)
	for _, sIdx := range subSlots {
		var start units.Duration
		if sIdx < sched.Result*sched.K {
			start = wstart + units.Duration(sIdx/sched.K)*tset + units.Duration(sIdx%sched.K)*pitch
		} else {
			start = wstart + units.Duration(sched.Result)*tset + units.Duration(sIdx-sched.Result*sched.K)*pitch
		}
		names := subs[sIdx]
		sort.Strings(names)
		segs = append(segs, segment{fmt.Sprintf("sub%d.%d", sIdx/sched.K+1, sIdx%sched.K+1),
			start, start + treset, "write-0: " + strings.Join(names, " ")})
	}
	record("tetris", render("tetris", segs), base)

	fmt.Fprintf(&b, "%s\n(tetris: result=%d write units, subresult=%d extra sub-write-units, Eq.5 metric %.3f)\n",
		finishes.String(), sched.Result, sched.SubResult, sched.WriteUnits())
	return b.String()
}
