package exp

import (
	"tetriswrite/internal/fault"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/stats"
	"tetriswrite/internal/system"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/workload"
)

// FaultToleranceTable is an extension beyond the paper's evaluation: it
// runs the write-intensive vips profile on a compact working set under a
// deliberately low per-cell endurance (so wear-out appears within a
// simulable write budget) plus a small transient pulse-failure rate, and
// reports how each write scheme fares once the device stops being ideal:
// verify retries, worn (stuck) cells, hard errors, spare-line remaps and
// the bank time burned on verify.
//
// Cell wear is recorded at the array, where writes are differential for
// every scheme (the device's PROG-enable gating drives only changed
// cells), so stuck-cell counts are close across schemes by design —
// what the table discriminates is the recovery machinery itself: how
// much verify-retry and sparing traffic the same failure pressure
// induces under each scheme's scheduling, and what it costs per write.
func FaultToleranceTable(opt Options) (*stats.Table, error) {
	opt.Normalize()
	prof, err := workload.ProfileByName("vips")
	if err != nil {
		return nil, err
	}
	// A compact working set concentrates wear, like EnduranceTable.
	prof.PrivateLines = 32
	prof.SharedLines = 32

	fcfg := fault.Config{
		Seed: opt.Seed,
		// Real PCM endures ~1e8 pulses; a handful here scales wear-out
		// down to a test-sized write budget.
		Endurance:     5,
		EnduranceCV:   0.25,
		TransientRate: 0.001,
	}

	tb := stats.NewTable("Fault tolerance: verify-retry and line sparing by scheme (vips, compact working set)",
		"scheme", "writes", "retries", "transient", "stuck-cells", "hard-errors", "remapped", "verify-ns/write")

	type cfg struct {
		name    string
		factory schemes.Factory
	}
	cfgs := []cfg{
		{"baseline", schemes.NewDCW},
		{"fnw", schemes.NewFlipNWrite},
		{"2stage", schemes.NewTwoStage},
		{"tetris", tetris.New},
	}
	for _, c := range cfgs {
		res, err := system.Run(prof, c.factory, system.Config{
			Params:      opt.Params,
			Cores:       opt.Cores,
			InstrBudget: opt.InstrBudget,
			Seed:        opt.Seed,
			Ctrl:        memctrl.Config{},
			Fault:       fcfg,
			SpareLines:  512,
		})
		if err != nil {
			return nil, err
		}
		st := res.Ctrl
		verifyPerWrite := 0.0
		if st.Writes > 0 {
			verifyPerWrite = st.VerifyOverhead.Nanoseconds() / float64(st.Writes)
		}
		tb.AddRow(c.name, st.Writes, st.Retries, res.Fault.TransientFailures,
			res.Fault.StuckCells, st.HardErrors, res.Spare.RemappedLines, verifyPerWrite)
	}
	return tb, nil
}
