package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"tetriswrite/internal/fault"
	"tetriswrite/internal/system"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/workload"
)

// BenchScheme is one scheme's row in the perf-trajectory artifact.
type BenchScheme struct {
	Scheme string `json:"scheme"`
	// WriteUnits is the mean write units per line write on the reference
	// workload — deterministic, so drift here is an algorithm change.
	WriteUnits float64 `json:"write_units_per_write"`
	// NsPerOp is the wall-clock cost of planning one write on this
	// machine — the noisy axis, for spotting order-of-magnitude
	// regressions, not single-digit percents.
	NsPerOp float64 `json:"ns_per_op"`
	// VerifyOverheadNsPerWrite is the simulated verify-loop bank time a
	// write pays under a 1% transient fault rate — deterministic.
	VerifyOverheadNsPerWrite float64 `json:"verify_overhead_ns_per_write"`
}

// BenchArtifact is the BENCH_<date>.json payload: one point of the
// repository's performance trajectory, comparable across commits.
type BenchArtifact struct {
	Date     string        `json:"date"`
	Workload string        `json:"workload"`
	Writes   int           `json:"writes"`
	Schemes  []BenchScheme `json:"schemes"`
	// FullSystemNsPerOp is the end-to-end wall-clock cost of one
	// full-system simulation in the BenchmarkFullSystemSingle
	// configuration (canneal under Tetris, 50k instructions), minimum of
	// a few rounds. Noisy like NsPerOp; for trajectory, not gating.
	FullSystemNsPerOp float64 `json:"full_system_ns_per_op"`
	// AllocsPerOp is the heap allocation count of that same run — the
	// quiet axis of the hot-path work: machine-independent up to GC
	// scheduling, so a jump here is an allocation regression even when
	// the wall clock hides it.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchReference is the workload the trajectory is measured on; vips is
// the paper's running example and exercises every scheme's fast paths.
const benchReference = "vips"

// BenchTrajectory measures every scheme's write units, planning
// throughput and verify overhead on the reference workload.
func BenchTrajectory(opt Options, date string) (*BenchArtifact, error) {
	opt.Normalize()
	prof, err := workload.ProfileByName(benchReference)
	if err != nil {
		return nil, err
	}
	art := &BenchArtifact{Date: date, Workload: prof.Name, Writes: opt.Writes}
	for _, nf := range SchemeSet() {
		row := BenchScheme{Scheme: nf.Name}

		s := nf.Factory(opt.Params)
		start := time.Now()
		row.WriteUnits = MeasureWriteUnits(prof, s, opt)
		row.NsPerOp = float64(time.Since(start).Nanoseconds()) / float64(opt.Writes)

		// Verify overhead under a modest transient-failure rate: simulated
		// bank time spent on read-back and re-pulse rounds, per write.
		cfg := system.Config{
			Params:      opt.Params,
			Cores:       opt.Cores,
			InstrBudget: 20_000,
			Seed:        opt.Seed,
			Fault:       fault.Config{TransientRate: 0.01, Seed: opt.Seed},
		}
		res, err := system.Run(prof, nf.Factory, cfg)
		if err != nil {
			return nil, fmt.Errorf("verify run (%s): %w", nf.Name, err)
		}
		if res.Ctrl.Writes > 0 {
			row.VerifyOverheadNsPerWrite = res.Ctrl.VerifyOverhead.Nanoseconds() / float64(res.Ctrl.Writes)
		}
		art.Schemes = append(art.Schemes, row)
	}
	art.FullSystemNsPerOp, art.AllocsPerOp, err = measureFullSystem(opt)
	if err != nil {
		return nil, err
	}
	return art, nil
}

// measureFullSystem times the BenchmarkFullSystemSingle configuration
// end to end and counts its heap allocations. One warmup run absorbs
// lazy initialization; of the measured rounds the fastest wall clock and
// the matching allocation count are reported.
func measureFullSystem(opt Options) (nsPerOp, allocsPerOp float64, err error) {
	prof, err := workload.ProfileByName("canneal")
	if err != nil {
		return 0, 0, err
	}
	cfg := system.Config{Params: opt.Params, InstrBudget: 50_000}
	run := func() (float64, float64, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := system.Run(prof, tetris.New, cfg); err != nil {
			return 0, 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		runtime.ReadMemStats(&after)
		return ns, float64(after.Mallocs - before.Mallocs), nil
	}
	if _, _, err := run(); err != nil {
		return 0, 0, fmt.Errorf("full-system bench: %w", err)
	}
	for round := 0; round < 3; round++ {
		ns, allocs, err := run()
		if err != nil {
			return 0, 0, fmt.Errorf("full-system bench: %w", err)
		}
		if nsPerOp == 0 || ns < nsPerOp {
			nsPerOp, allocsPerOp = ns, allocs
		}
	}
	return nsPerOp, allocsPerOp, nil
}

// WriteJSON writes the artifact as indented JSON.
func (a *BenchArtifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
