package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tetriswrite/internal/fault"
	"tetriswrite/internal/system"
	"tetriswrite/internal/workload"
)

// BenchScheme is one scheme's row in the perf-trajectory artifact.
type BenchScheme struct {
	Scheme string `json:"scheme"`
	// WriteUnits is the mean write units per line write on the reference
	// workload — deterministic, so drift here is an algorithm change.
	WriteUnits float64 `json:"write_units_per_write"`
	// NsPerOp is the wall-clock cost of planning one write on this
	// machine — the noisy axis, for spotting order-of-magnitude
	// regressions, not single-digit percents.
	NsPerOp float64 `json:"ns_per_op"`
	// VerifyOverheadNsPerWrite is the simulated verify-loop bank time a
	// write pays under a 1% transient fault rate — deterministic.
	VerifyOverheadNsPerWrite float64 `json:"verify_overhead_ns_per_write"`
}

// BenchArtifact is the BENCH_<date>.json payload: one point of the
// repository's performance trajectory, comparable across commits.
type BenchArtifact struct {
	Date     string        `json:"date"`
	Workload string        `json:"workload"`
	Writes   int           `json:"writes"`
	Schemes  []BenchScheme `json:"schemes"`
}

// benchReference is the workload the trajectory is measured on; vips is
// the paper's running example and exercises every scheme's fast paths.
const benchReference = "vips"

// BenchTrajectory measures every scheme's write units, planning
// throughput and verify overhead on the reference workload.
func BenchTrajectory(opt Options, date string) (*BenchArtifact, error) {
	opt.Normalize()
	prof, err := workload.ProfileByName(benchReference)
	if err != nil {
		return nil, err
	}
	art := &BenchArtifact{Date: date, Workload: prof.Name, Writes: opt.Writes}
	for _, nf := range SchemeSet() {
		row := BenchScheme{Scheme: nf.Name}

		s := nf.Factory(opt.Params)
		start := time.Now()
		row.WriteUnits = MeasureWriteUnits(prof, s, opt)
		row.NsPerOp = float64(time.Since(start).Nanoseconds()) / float64(opt.Writes)

		// Verify overhead under a modest transient-failure rate: simulated
		// bank time spent on read-back and re-pulse rounds, per write.
		cfg := system.Config{
			Params:      opt.Params,
			Cores:       opt.Cores,
			InstrBudget: 20_000,
			Seed:        opt.Seed,
			Fault:       fault.Config{TransientRate: 0.01, Seed: opt.Seed},
		}
		res, err := system.Run(prof, nf.Factory, cfg)
		if err != nil {
			return nil, fmt.Errorf("verify run (%s): %w", nf.Name, err)
		}
		if res.Ctrl.Writes > 0 {
			row.VerifyOverheadNsPerWrite = res.Ctrl.VerifyOverhead.Nanoseconds() / float64(res.Ctrl.Writes)
		}
		art.Schemes = append(art.Schemes, row)
	}
	return art, nil
}

// WriteJSON writes the artifact as indented JSON.
func (a *BenchArtifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
