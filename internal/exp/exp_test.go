package exp

import (
	"strconv"
	"strings"
	"testing"

	"tetriswrite/internal/pcm"
)

func fastOptions() Options {
	return Options{
		Writes:      400,
		InstrBudget: 60_000,
		Seed:        3,
	}
}

func TestFigure3Shape(t *testing.T) {
	tb := Figure3(fastOptions())
	out := tb.String()
	for _, w := range []string{"blackscholes", "vips", "average"} {
		if !strings.Contains(out, w) {
			t.Errorf("Figure 3 output missing %q", w)
		}
	}
	rows := parseRows(out)
	// blackscholes lightest, vips heaviest; average total in the
	// neighbourhood of the paper's 9.6.
	if rows["blackscholes"][2] > rows["vips"][2] {
		t.Error("blackscholes total >= vips total; Figure 3 shape broken")
	}
	avg := rows["average"]
	if avg[2] < 6 || avg[2] > 13 {
		t.Errorf("average total bit-writes %.2f, want in [6, 13] (paper: 9.6)", avg[2])
	}
	if avg[1] <= avg[0] {
		t.Errorf("average SET %.2f not dominant over RESET %.2f", avg[1], avg[0])
	}
}

func TestTable3(t *testing.T) {
	tb := Table3(fastOptions())
	out := tb.String()
	if !strings.Contains(out, "Enterprise Storage") || !strings.Contains(out, "2.760") {
		t.Errorf("Table III content missing:\n%s", out)
	}
}

func TestFigure10Shape(t *testing.T) {
	tb := Figure10(fastOptions())
	out := tb.String()
	rows := parseRows(out)
	avg := rows["average"]
	// Columns: baseline, fnw, 2stage, 3stage, tetris.
	if avg[0] != 8 {
		t.Errorf("baseline write units %.2f, want 8", avg[0])
	}
	if avg[1] != 4 {
		t.Errorf("fnw write units %.2f, want 4", avg[1])
	}
	if avg[2] < 2.9 || avg[2] > 3.0 {
		t.Errorf("2stage write units %.2f, want ~3", avg[2])
	}
	if avg[3] < 2.4 || avg[3] > 2.5 {
		t.Errorf("3stage write units %.2f, want ~2.5", avg[3])
	}
	if avg[4] < 1.0 || avg[4] > 1.8 {
		t.Errorf("tetris write units %.2f, want in the paper's 1.06-1.46 band", avg[4])
	}
	// Per-workload: sparse blackscholes near 1, dense vips higher.
	if rows["blackscholes"][4] > rows["vips"][4] {
		t.Error("tetris: blackscholes should need fewer write units than vips")
	}
}

func TestFullSystemFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	fr, err := RunFullSystem(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	f11 := parseRows(fr.Figure11().String())
	f12 := parseRows(fr.Figure12().String())
	f13 := parseRows(fr.Figure13().String())
	f14 := parseRows(fr.Figure14().String())

	check := func(name string, rows map[string][]float64, wantDecreasing bool) {
		g := rows["geomean"]
		if g[0] != 1.0 {
			t.Errorf("%s: baseline geomean %.3f, want 1", name, g[0])
		}
		for i := 1; i < len(g); i++ {
			if wantDecreasing && g[i] >= g[i-1] {
				t.Errorf("%s: geomean not improving at column %d: %v", name, i, g)
			}
			if !wantDecreasing && g[i] <= g[i-1] {
				t.Errorf("%s: geomean not increasing at column %d: %v", name, i, g)
			}
		}
	}
	check("fig11 read latency", f11, true)
	check("fig12 write latency", f12, true)
	check("fig13 IPC", f13, false)
	check("fig14 running time", f14, true)

	// Tetris IPC improvement must be the largest of the set (checked by
	// the monotonicity above) and well above 1 (the paper reports 2x
	// against its own workload mix; the geomean here includes the two
	// barely memory-bound workloads, which pull it toward 1).
	if g := f13["geomean"]; g[4] < 1.35 {
		t.Errorf("tetris IPC improvement %.2f, want > 1.35", g[4])
	}
	// Energy: comparison-based schemes save energy vs baseline... the
	// baseline DCW is already comparison-based, so 2stage must *cost*
	// more energy, fnw/3stage/tetris about the same as baseline.
	en := parseRows(fr.EnergyTable().String())
	g := en["geomean"]
	if g[2] < 2 {
		t.Errorf("2stage energy %.2f of baseline, want >> 1 (writes every cell)", g[2])
	}
	if g[4] > 1.2 {
		t.Errorf("tetris energy %.2f of baseline, want ~1", g[4])
	}
}

func TestFigure4Diagram(t *testing.T) {
	out := Figure4(pcm.DefaultParams())
	for _, w := range []string{"conventional", "fnw", "2stage", "3stage", "tetris", "result=2", "subresult=0"} {
		if !strings.Contains(out, w) {
			t.Errorf("Figure 4 output missing %q\n%s", w, out)
		}
	}
	// The paper's completion order: tetris < 3stage < 2stage < fnw <
	// conventional. Extract COMPLETE lines.
	finish := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "COMPLETE") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		finish[fields[0]] = ns
	}
	order := []string{"tetris", "3stage", "2stage", "fnw", "conventional"}
	for i := 1; i < len(order); i++ {
		if finish[order[i-1]] >= finish[order[i]] {
			t.Errorf("completion order broken: %s (%v) !< %s (%v)",
				order[i-1], finish[order[i-1]], order[i], finish[order[i]])
		}
	}
}

// parseRows extracts numeric cells per label row from a rendered table.
func parseRows(out string) map[string][]float64 {
	rows := map[string][]float64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		var vals []float64
		for _, f := range fields[1:] {
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				vals = append(vals, v)
			}
		}
		if len(vals) > 0 {
			rows[fields[0]] = vals
		}
	}
	return rows
}

func TestLineSizeSweep(t *testing.T) {
	opt := fastOptions()
	opt.Writes = 200
	rows := parseRows(LineSizeSweep(opt).String())
	// Baseline scales linearly with the line size: 8, 16, 32 units.
	for _, c := range []struct {
		line string
		want float64
	}{{"64", 8}, {"128", 16}, {"256", 32}} {
		if got := rows[c.line][0]; got != c.want {
			t.Errorf("line %sB baseline = %v write units, want %v", c.line, got, c.want)
		}
	}
	// Tetris grows far slower than linearly: 256B costs less than 3x 64B.
	if rows["256"][4] >= 3*rows["64"][4] {
		t.Errorf("tetris at 256B = %v, 64B = %v; should scale sublinearly",
			rows["256"][4], rows["64"][4])
	}
	// And stays below three-stage at every size.
	for _, line := range []string{"64", "128", "256"} {
		if rows[line][4] >= rows[line][3] {
			t.Errorf("line %sB: tetris %v !< 3stage %v", line, rows[line][4], rows[line][3])
		}
	}
}

func TestBudgetSweep(t *testing.T) {
	opt := fastOptions()
	opt.Writes = 200
	rows := parseRows(BudgetSweep(opt).String())
	// Write units grow monotonically as the budget shrinks, per scheme.
	order := []string{"32", "16", "8", "4"}
	for col := 0; col < 5; col++ {
		for i := 1; i < len(order); i++ {
			if rows[order[i]][col] < rows[order[i-1]][col]-1e-9 {
				t.Errorf("column %d: budget %s (%v) easier than budget %s (%v)",
					col, order[i], rows[order[i]][col], order[i-1], rows[order[i-1]][col])
			}
		}
	}
	// Tetris has the lowest cost at every budget.
	for _, b := range order {
		for col := 0; col < 4; col++ {
			if rows[b][4] > rows[b][col] {
				t.Errorf("budget %s: tetris %v worse than column %d (%v)", b, rows[b][4], col, rows[b][col])
			}
		}
	}
}

func TestEnduranceTable(t *testing.T) {
	opt := fastOptions()
	opt.InstrBudget = 150_000
	tb, err := EnduranceTable(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseRows(tb.String())
	base := rows["baseline"]
	baseSG := rows["baseline+sg"]
	twoStage := rows["2stage"]
	tet := rows["tetris"]
	tetSG := rows["tetris+sg"]
	if base == nil || baseSG == nil || tet == nil || tetSG == nil {
		t.Fatalf("missing rows:\n%s", tb.String())
	}
	// Columns: bit-writes, max-line, mean-line, gap-moves, lifetime.
	if base[4] != 1.0 {
		t.Errorf("baseline lifetime %v, want 1.0 by definition", base[4])
	}
	// 2-Stage writes every cell (~544 pulses/line) where the baseline
	// pulses only vips's ~130 changed bits: expect a multiple-of-3 gap.
	if twoStage[0] < 3*base[0] {
		t.Errorf("2stage bit-writes %v not >> baseline %v", twoStage[0], base[0])
	}
	// Wear leveling spreads the hotspot: max wear drops, lifetime > 1.
	if baseSG[1] >= base[1] {
		t.Errorf("start-gap max wear %v not below baseline %v", baseSG[1], base[1])
	}
	if baseSG[4] <= 1.0 {
		t.Errorf("start-gap lifetime %v, want > 1", baseSG[4])
	}
	if baseSG[3] == 0 {
		t.Error("no gap moves recorded")
	}
	// The composition is at least as good as leveling alone.
	if tetSG[4] < baseSG[4]*0.9 {
		t.Errorf("tetris+sg lifetime %v much worse than baseline+sg %v", tetSG[4], baseSG[4])
	}
	_ = tet
}

func TestCheckShapes(t *testing.T) {
	opt := fastOptions()
	results, err := CheckShapes(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("%d checks, want 9", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("check failed: %s (%s)", r.Name, r.Detail)
		}
	}
}

func TestTailLatencyTable(t *testing.T) {
	opt := fastOptions()
	fr, err := RunFullSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseRows(fr.TailLatency().String())
	v := rows["vips"]
	if len(v) != 5 {
		t.Fatalf("vips row = %v", v)
	}
	// Tail ordering on the most memory-bound workload: tetris's P99 must
	// beat the baseline's by a wide margin.
	if v[4] >= v[0]/2 {
		t.Errorf("tetris P99 %v not well below baseline %v", v[4], v[0])
	}
}

func TestSeedSpread(t *testing.T) {
	opt := fastOptions()
	opt.InstrBudget = 40_000
	tb, err := SeedSpread(opt, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseRows(tb.String())
	// For every seed the ordering held, so min(tetris) > max(baseline)=1
	// and each scheme's min improvement exceeds the previous scheme's...
	// assert the conservative core: tetris's MINIMUM beats 3stage's MEAN
	// being ordered, and the baseline row is exactly 1.
	base := rows["baseline"]
	tet := rows["tetris"]
	if base[0] != 1 || base[1] != 1 || base[2] != 1 {
		t.Errorf("baseline row = %v, want all 1", base)
	}
	if tet[1] <= 1.0 {
		t.Errorf("tetris min improvement %v, want > 1 across all seeds", tet[1])
	}
	if tet[1] <= rows["fnw"][2] {
		t.Errorf("tetris min (%v) does not dominate fnw max (%v): ordering unstable", tet[1], rows["fnw"][2])
	}
}

func TestFaultToleranceTable(t *testing.T) {
	opt := fastOptions()
	opt.InstrBudget = 120_000
	tb, err := FaultToleranceTable(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseRows(tb.String())
	base := rows["baseline"]
	tet := rows["tetris"]
	if base == nil || tet == nil {
		t.Fatalf("missing rows:\n%s", tb.String())
	}
	// Columns: writes, retries, transient, stuck-cells, hard-errors,
	// remapped, verify-ns/write.
	if base[3] == 0 {
		t.Errorf("baseline suffered no stuck cells; the table's endurance is tuned to provoke them:\n%s", tb)
	}
	// Stuck counts are array-level (writes are differential for every
	// scheme at the device), so schemes should land in the same ballpark.
	if tet[3] > 2*base[3] || base[3] > 2*tet[3] {
		t.Errorf("tetris stuck cells %v far from baseline %v:\n%s", tet[3], base[3], tb)
	}
	if base[1] == 0 || base[4] == 0 || base[5] == 0 {
		t.Errorf("recovery ladder inactive (retries/hard-errors/remaps):\n%s", tb)
	}
	// Verify overhead is charged per write.
	if base[6] <= 0 {
		t.Errorf("verify-ns/write not positive:\n%s", tb)
	}
	// Determinism: the same options reproduce the same table.
	tb2, err := FaultToleranceTable(opt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() != tb2.String() {
		t.Errorf("fault-tolerance table not deterministic:\n%s\nvs\n%s", tb, tb2)
	}
}
