package exp

import (
	"bytes"
	"errors"
	"fmt"

	"tetriswrite/internal/crash"
	"tetriswrite/internal/guard"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/stats"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// CrashSweepOptions configure the crash-consistency sweep.
type CrashSweepOptions struct {
	Options
	// Every selects the cut density: the sweep crashes each cell at
	// every Every-th pulse boundary (default 64).
	Every int64
	// MaxCuts caps the cut points per cell; when the Every grid yields
	// more, the points are subsampled evenly so the cuts still span the
	// whole run (default 8).
	MaxCuts int
}

// Normalize fills defaults. The write count defaults lower than the
// figure sweeps: every cut replays the cell three times (oracle, crash,
// resume).
func (o *CrashSweepOptions) Normalize() {
	if o.Writes <= 0 {
		o.Writes = 120
	}
	o.Options.Normalize()
	if o.Every <= 0 {
		o.Every = 64
	}
	if o.MaxCuts <= 0 {
		o.MaxCuts = 8
	}
}

// CrashCell aggregates every cut of one (workload, scheme) cell.
type CrashCell struct {
	Workload, Scheme string
	TotalPulses      int64
	Cuts             int
	Intents          int
	Clean            int
	Rollforwards     int
	Reissues         int
	TagRepairs       int
	RecoverySets     int64
	RecoveryResets   int64
	RecoveryTime     units.Duration
}

// CrashSweepResult is the full grid.
type CrashSweepResult struct {
	Opt   CrashSweepOptions
	Cells []CrashCell
}

// Table renders the per-scheme crash classification table: how the
// armed intents found at each cut were classified, and what the
// recovery pass cost — the artifact the crash-smoke CI job uploads.
func (r *CrashSweepResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Crash sweep: recovery classification (cut every %d pulses)", r.Opt.Every),
		"scheme", "cuts", "intents", "clean", "rollfwd", "reissue", "tagfix", "rec_sets", "rec_resets", "rec_ns/cut")
	order := []string{}
	per := map[string]*CrashCell{}
	for _, c := range r.Cells {
		a := per[c.Scheme]
		if a == nil {
			a = &CrashCell{}
			per[c.Scheme] = a
			order = append(order, c.Scheme)
		}
		a.Cuts += c.Cuts
		a.Intents += c.Intents
		a.Clean += c.Clean
		a.Rollforwards += c.Rollforwards
		a.Reissues += c.Reissues
		a.TagRepairs += c.TagRepairs
		a.RecoverySets += c.RecoverySets
		a.RecoveryResets += c.RecoveryResets
		a.RecoveryTime += c.RecoveryTime
	}
	for _, name := range order {
		a := per[name]
		perCut := 0.0
		if a.Cuts > 0 {
			perCut = a.RecoveryTime.Nanoseconds() / float64(a.Cuts)
		}
		tb.AddRow(name, a.Cuts, a.Intents, a.Clean, a.Rollforwards, a.Reissues,
			a.TagRepairs, a.RecoverySets, a.RecoveryResets, perCut)
	}
	return tb
}

// crashOp is one record of a cell's write stream.
type crashOp struct {
	addr pcm.LineAddr
	data []byte
}

// crashOps materializes the workload's write stream (private copies —
// the stream generator reuses its buffers).
func crashOps(prof workload.Profile, opt Options) []crashOp {
	var ops []crashOp
	writeStream(prof, opt, func(addr pcm.LineAddr, _, new []byte) {
		ops = append(ops, crashOp{addr, append([]byte(nil), new...)})
	})
	return ops
}

// crashCtrlConfig is the controller configuration of every sweep run:
// opportunistic service so the stream drains without queue pressure, no
// coalescing so each submitted op maps to exactly one acknowledgement.
func crashCtrlConfig() memctrl.Config {
	return memctrl.Config{OpportunisticWrites: true, DisableCoalescing: true}
}

// pump submits ops in index order as queue space permits, skipping
// indices where skip is true, and flips acked[k] when op k is
// acknowledged. A trailing WhenIdle forces the final drain.
func pump(eng *sim.Engine, ctrl *memctrl.Controller, ops []crashOp, skip, acked []bool) {
	next := 0
	var fill func()
	fill = func() {
		for next < len(ops) {
			k := next
			if skip != nil && skip[k] {
				next++
				continue
			}
			if !ctrl.SubmitWrite(ops[k].addr, ops[k].data, func(units.Time) { acked[k] = true }) {
				ctrl.WhenWriteSpace(fill)
				return
			}
			next++
		}
		ctrl.WhenIdle(func() {})
	}
	eng.At(0, fill)
}

// CrashSweep runs the crash-consistency sweep: for every workload and
// scheme, an oracle run establishes the cell's total pulse count and
// final image, then the cell is re-run with a power cut at every
// Every-th pulse boundary. Each cut is recovered (system.Recover
// semantics via crash.Recover) and resumed on a fresh engine with the
// recovered device and scheme instances, replaying the unacknowledged
// writes under a deep-checking guard. The sweep fails unless, at every
// cut:
//
//   - every acknowledged write with no newer write in flight survives
//     bit-identically (the acknowledged-durability contract),
//   - recovery brings every armed intent's line to its intended data,
//   - the resumed run converges to the oracle's final image on every
//     touched line.
func CrashSweep(opt CrashSweepOptions) (*CrashSweepResult, error) {
	opt.Normalize()
	set, err := ResolveSchemes(opt.Schemes)
	if err != nil {
		return nil, err
	}
	if len(opt.Schemes) == 0 {
		// Default grid: the five compared schemes plus the conventional
		// baseline — its always-rollforward classifier is the degenerate
		// corner the others are measured against.
		set = append([]NamedFactory{{"conventional", schemes.NewConventional}}, set...)
	}
	res := &CrashSweepResult{Opt: opt}
	for _, prof := range workload.Profiles() {
		for _, nf := range set {
			cell, err := runCrashCell(prof, nf, opt)
			if err != nil {
				return nil, fmt.Errorf("crash sweep %s/%s: %w", prof.Name, nf.Name, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// runCrashCell sweeps the cut grid of one (workload, scheme) cell.
func runCrashCell(prof workload.Profile, nf NamedFactory, opt CrashSweepOptions) (CrashCell, error) {
	cell := CrashCell{Workload: prof.Name, Scheme: nf.Name}
	ops := crashOps(prof, opt.Options)
	if len(ops) == 0 {
		return cell, nil
	}

	// Oracle run: a disabled injector rides along purely as a boundary
	// counter and ack-contract checker; it never perturbs the run.
	eng := sim.NewEngine(opt.EngineQueue)
	dev := pcm.MustNewDevice(opt.Params)
	ctrl := memctrl.New(eng, dev, nf.Factory, crashCtrlConfig())
	counter, err := crash.New(crash.Config{}, opt.Params)
	if err != nil {
		return cell, err
	}
	counter.Bind(eng, dev, ctrl.Schemes())
	if err := ctrl.SetCrash(counter); err != nil {
		return cell, err
	}
	acked := make([]bool, len(ops))
	pump(eng, ctrl, ops, nil, acked)
	eng.Run()
	if err := eng.StopReason(); err != nil {
		return cell, fmt.Errorf("oracle run aborted: %w", err)
	}
	for k := range ops {
		if !acked[k] {
			return cell, fmt.Errorf("oracle run never acknowledged write %d", k)
		}
	}
	cell.TotalPulses = counter.PulsesIssued()

	// The crash-free image: last write to each line wins.
	final := map[pcm.LineAddr][]byte{}
	for _, op := range ops {
		final[op.addr] = op.data
	}

	for _, cut := range cutPoints(cell.TotalPulses, opt.Every, opt.MaxCuts) {
		if err := runOneCut(prof, nf, opt, ops, final, cut, &cell); err != nil {
			return cell, fmt.Errorf("cut at pulse %d: %w", cut, err)
		}
		cell.Cuts++
	}
	return cell, nil
}

// cutPoints returns the Every-grid up to total, subsampled evenly to at
// most maxCuts points so a cap still exercises late-run cuts.
func cutPoints(total, every int64, maxCuts int) []int64 {
	var pts []int64
	for p := every; p <= total; p += every {
		pts = append(pts, p)
	}
	if maxCuts > 0 && len(pts) > maxCuts {
		sub := make([]int64, 0, maxCuts)
		for i := 0; i < maxCuts; i++ {
			sub = append(sub, pts[i*len(pts)/maxCuts])
		}
		pts = sub
	}
	return pts
}

// runOneCut crashes the cell at one pulse boundary, recovers, resumes,
// and asserts the three contracts against the crash-free oracle.
func runOneCut(prof workload.Profile, nf NamedFactory, opt CrashSweepOptions,
	ops []crashOp, final map[pcm.LineAddr][]byte, cut int64, cell *CrashCell) error {
	eng := sim.NewEngine(opt.EngineQueue)
	dev := pcm.MustNewDevice(opt.Params)
	ctrl := memctrl.New(eng, dev, nf.Factory, crashCtrlConfig())
	cinj, err := crash.New(crash.Config{AtPulse: cut}, opt.Params)
	if err != nil {
		return err
	}
	cinj.Bind(eng, dev, ctrl.Schemes())
	if err := ctrl.SetCrash(cinj); err != nil {
		return err
	}
	acked := make([]bool, len(ops))
	pump(eng, ctrl, ops, nil, acked)
	eng.Run()

	var ce *crash.CutError
	if err := eng.StopReason(); !errors.As(err, &ce) {
		return fmt.Errorf("run did not stop with a cut (stop reason: %v)", err)
	}
	img := ce.Image

	// Contract A: every acknowledged line with no newer write in flight
	// holds its last acknowledged data at the instant of the cut. A line
	// with an armed intent is legally torn — recovery owns it.
	inflight := map[pcm.LineAddr]bool{}
	for _, in := range img.Intents {
		inflight[in.Addr] = true
	}
	buf := make([]byte, opt.Params.LineBytes)
	for addr, want := range img.Acked {
		if inflight[addr] {
			continue
		}
		img.Dev.PeekLine(addr, buf)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("acknowledged line %d torn by the cut", addr)
		}
	}

	// Contract B: the recovery pass itself (internal deep validation
	// brings and checks every intent line to its intended data).
	rep, err := crash.Recover(img)
	if err != nil {
		return err
	}
	cell.Intents += rep.Intents
	cell.Clean += rep.Clean
	cell.Rollforwards += rep.Rollforwards
	cell.Reissues += rep.Reissues
	cell.TagRepairs += rep.TagRepairs
	cell.RecoverySets += rep.RecoverySets
	cell.RecoveryResets += rep.RecoveryResets
	cell.RecoveryTime += rep.RecoveryTime

	// Resume on a fresh engine with the recovered device and scheme
	// instances (the durable controller metadata), replaying every write
	// that was never acknowledged. Ops older than a line's last
	// acknowledged write are superseded and must not regress it.
	lastAcked := map[pcm.LineAddr]int{}
	for k := range ops {
		if acked[k] {
			lastAcked[ops[k].addr] = k
		}
	}
	skip := make([]bool, len(ops))
	for k := range ops {
		skip[k] = acked[k] || k < lastAcked[ops[k].addr]
	}
	eng2 := sim.NewEngine(opt.EngineQueue)
	ctrl2 := memctrl.NewWithSchemes(eng2, img.Dev, img.Schemes, crashCtrlConfig())
	g := guard.New(opt.Params, guard.Config{Enabled: true, DeepChecks: true})
	g.AdoptShadow(img.Shadow)
	g.SetFingerprint(opt.Seed, prof.Name, nf.Name)
	ctrl2.SetGuard(g)
	reacked := make([]bool, len(ops))
	pump(eng2, ctrl2, ops, skip, reacked)
	eng2.Run()
	if err := eng2.StopReason(); err != nil {
		return fmt.Errorf("resumed run aborted: %w", err)
	}
	if err := g.Err(); err != nil {
		return fmt.Errorf("resumed run guard violation: %w", err)
	}
	for k := range ops {
		if !skip[k] && !reacked[k] {
			return fmt.Errorf("resumed run never acknowledged replayed write %d", k)
		}
	}

	// Contract C: the recovered-and-resumed image is bit-identical to
	// the crash-free oracle on every touched line.
	for addr, want := range final {
		img.Dev.PeekLine(addr, buf)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("line %d diverges from the crash-free oracle after resume", addr)
		}
	}
	return nil
}
