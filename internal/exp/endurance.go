package exp

import (
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/stats"
	"tetriswrite/internal/system"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/workload"
)

// EnduranceTable is an extension beyond the paper's evaluation: PCM cells
// die after a bounded number of bit-writes, so lifetime is set by the
// hottest cell. Write schemes reduce how many cells each write programs
// (DCW/Tetris pulse only changed bits), Start-Gap wear leveling spreads
// where they land; the table quantifies both effects and their
// composition on the most write-intensive workload. The lifetime factor
// is the baseline-without-leveling max line wear divided by each
// configuration's max line wear (higher is better).
func EnduranceTable(opt Options) (*stats.Table, error) {
	opt.Normalize()
	prof, err := workload.ProfileByName("vips")
	if err != nil {
		return nil, err
	}
	// A compact working set concentrates wear so the table converges at
	// modest instruction budgets.
	prof.PrivateLines = 512
	prof.SharedLines = 512

	tb := stats.NewTable("Endurance: per-line wear by scheme and wear leveling (vips, compact working set)",
		"config", "bit-writes", "max-line", "mean-line", "gap-moves", "lifetime")

	type cfg struct {
		name    string
		factory schemes.Factory
		psi     int
	}
	cfgs := []cfg{
		{"baseline", schemes.NewDCW, 0},
		{"baseline+sg", schemes.NewDCW, 100},
		{"2stage", schemes.NewTwoStage, 0},
		{"tetris", tetris.New, 0},
		{"tetris+sg", tetris.New, 100},
	}
	var baseMax int64
	for i, c := range cfgs {
		res, err := system.Run(prof, c.factory, system.Config{
			Params:       opt.Params,
			Cores:        opt.Cores,
			InstrBudget:  opt.InstrBudget,
			Seed:         opt.Seed,
			Ctrl:         memctrl.Config{},
			WearLevelPsi: c.psi,
			TrackWear:    true,
		})
		if err != nil {
			return nil, err
		}
		w := res.Wear
		if i == 0 {
			baseMax = w.MaxLineWear
		}
		moves := int64(0)
		if res.Remap != nil {
			moves = res.Remap.GapMoves
		}
		lifetime := 0.0
		if w.MaxLineWear > 0 {
			lifetime = float64(baseMax) / float64(w.MaxLineWear)
		}
		tb.AddRow(c.name, w.TotalBitWrites, w.MaxLineWear, w.MeanLineWear, moves, lifetime)
	}
	return tb, nil
}
