package cpu

import (
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// scriptSource replays a fixed op list, then repeats the last op forever.
type scriptSource struct {
	ops []workload.Op
	i   int
}

func (s *scriptSource) Next() workload.Op {
	if s.i < len(s.ops) {
		op := s.ops[s.i]
		s.i++
		return op
	}
	return s.ops[len(s.ops)-1]
}

// fakeMem is a MemPort with a fixed read latency and scriptable write
// acceptance.
type fakeMem struct {
	eng         *sim.Engine
	readLat     units.Duration
	rejectFirst int // reject this many writes before accepting
	waiters     []func()
	reads       int
	writes      int
}

func (m *fakeMem) SubmitRead(addr pcm.LineAddr, onDone func(units.Time, []byte)) bool {
	m.reads++
	at := m.eng.Now().Add(m.readLat)
	m.eng.At(at, func() { onDone(at, make([]byte, 64)) })
	return true
}

func (m *fakeMem) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(units.Time)) bool {
	if m.rejectFirst > 0 {
		m.rejectFirst--
		return false
	}
	m.writes++
	return true
}

func (m *fakeMem) WhenWriteSpace(fn func()) {
	m.waiters = append(m.waiters, fn)
}

func twoGHz() units.Clock { return units.NewClock(2e9) }

func TestCoreThinkTiming(t *testing.T) {
	eng := &sim.Engine{}
	src := &scriptSource{ops: []workload.Op{{Think: 1000, Addr: 1}}}
	mem := &fakeMem{eng: eng, readLat: 100 * units.Nanosecond}
	done := false
	// Budget of exactly 1000: the core must finish at 1000 cycles
	// (500 ns) without issuing the access.
	core := New(eng, twoGHz(), src, mem, 1000, func() { done = true })
	core.Start()
	eng.Run()
	if !done {
		t.Fatal("core never finished")
	}
	if got := core.Stats().FinishedAt; got != units.Time(500*units.Nanosecond) {
		t.Errorf("finished at %v, want 500ns", got)
	}
	if mem.reads != 0 {
		t.Error("access issued past the instruction budget")
	}
}

func TestCoreBlocksOnReads(t *testing.T) {
	eng := &sim.Engine{}
	// Two reads with 1000-instruction gaps; read latency 200ns.
	src := &scriptSource{ops: []workload.Op{
		{Think: 1000, Addr: 1},
		{Think: 1000, Addr: 2},
		{Think: 1000000, Addr: 3},
	}}
	mem := &fakeMem{eng: eng, readLat: 200 * units.Nanosecond}
	core := New(eng, twoGHz(), src, mem, 2500, nil)
	core.Start()
	eng.RunUntil(units.Time(10 * units.Microsecond))
	st := core.Stats()
	if st.Reads != 2 {
		t.Fatalf("issued %d reads, want 2", st.Reads)
	}
	// Timeline: 500ns think, 200ns read, 500ns think, 200ns read, then
	// the remaining 500 instructions (250ns): 1650ns.
	if !st.Finished || st.FinishedAt != units.Time(1650*units.Nanosecond) {
		t.Errorf("finished=%v at %v, want 1650ns", st.Finished, st.FinishedAt)
	}
	if st.ReadStall != 400*units.Nanosecond {
		t.Errorf("ReadStall = %v, want 400ns", st.ReadStall)
	}
}

func TestCorePostsWrites(t *testing.T) {
	eng := &sim.Engine{}
	data := make([]byte, 64)
	src := &scriptSource{ops: []workload.Op{
		{Think: 1000, Write: true, Addr: 1, Data: data},
		{Think: 1000000, Addr: 2},
	}}
	mem := &fakeMem{eng: eng}
	core := New(eng, twoGHz(), src, mem, 1500, nil)
	core.Start()
	eng.Run()
	st := core.Stats()
	if st.Writes != 1 {
		t.Fatalf("Writes = %d", st.Writes)
	}
	if st.WriteStall != 0 {
		t.Errorf("WriteStall = %v on accepted write", st.WriteStall)
	}
	// Write was posted: finish = 1500 instructions = 750ns.
	if st.FinishedAt != units.Time(750*units.Nanosecond) {
		t.Errorf("finished at %v, want 750ns", st.FinishedAt)
	}
}

func TestCoreStallsOnFullWriteQueue(t *testing.T) {
	eng := &sim.Engine{}
	data := make([]byte, 64)
	src := &scriptSource{ops: []workload.Op{
		{Think: 1000, Write: true, Addr: 1, Data: data},
		{Think: 1000000, Addr: 2},
	}}
	mem := &fakeMem{eng: eng, rejectFirst: 1}
	core := New(eng, twoGHz(), src, mem, 1500, nil)
	core.Start()
	// Release the stalled write 300ns in.
	eng.At(units.Time(800*units.Nanosecond), func() {
		for _, fn := range mem.waiters {
			fn()
		}
	})
	eng.Run()
	st := core.Stats()
	if st.Writes != 1 {
		t.Fatalf("Writes = %d, want 1 (retry must not double count)", st.Writes)
	}
	if st.WriteStall != 300*units.Nanosecond {
		t.Errorf("WriteStall = %v, want 300ns", st.WriteStall)
	}
}

func TestIPC(t *testing.T) {
	clock := twoGHz()
	s := Stats{Retired: 1000, Finished: true, FinishedAt: units.Time(1000 * units.Nanosecond)}
	// 1000 instructions in 2000 cycles -> IPC 0.5.
	if got := s.IPC(clock, 0); got != 0.5 {
		t.Errorf("IPC = %v, want 0.5", got)
	}
	unfinished := Stats{Retired: 500}
	if got := unfinished.IPC(clock, units.Time(500*units.Nanosecond)); got != 0.5 {
		t.Errorf("unfinished IPC = %v, want 0.5", got)
	}
}
