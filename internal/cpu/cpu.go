// Package cpu models the processing cores of the evaluation platform:
// 2 GHz cores that retire one instruction per cycle, block on memory
// reads, and post memory writes to the controller (stalling only when its
// write queue is full). The paper's 4-core out-of-order ALPHA setup is
// substituted by this simpler model: the evaluation's sensitivity to the
// CPU is "reads block the pipeline, writes back-pressure through the
// write queue", which this model reproduces; an O3 window would shift
// absolute IPC but not the relative ordering of write schemes.
package cpu

import (
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// OpSource supplies a core's instruction stream.
type OpSource interface {
	Next() workload.Op
}

// MemPort is the memory interface a core drives — implemented by the
// memory controller directly, or by a cache hierarchy in front of it.
type MemPort interface {
	SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool
	SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool
	WhenWriteSpace(fn func())
}

// Stats describes one core's execution.
type Stats struct {
	Retired    int64          // instructions retired
	Reads      int64          // memory reads issued
	Writes     int64          // memory writes issued
	ReadStall  units.Duration // time blocked on reads
	WriteStall units.Duration // time blocked on a full write queue
	FinishedAt units.Time     // when the instruction budget retired
	Finished   bool
}

// Core executes an operation stream against a memory port.
type Core struct {
	eng    *sim.Engine
	clock  units.Clock
	src    OpSource
	mem    MemPort
	budget int64 // instructions to retire before finishing
	stats  Stats
	onDone func()

	retryBackoff units.Duration

	// The core is strictly serial — at most one continuation is ever
	// outstanding — so its event callbacks are prebound once here and
	// reused for every operation, keeping the steady-state step loop
	// allocation-free. op/issueSince carry the in-flight operation the
	// continuations act on.
	op         workload.Op
	issueSince units.Time
	thinkFn    func()
	budgetFn   func()
	readDoneFn func(at units.Time, data []byte)
	retryRdFn  func()
	retryWrFn  func()
}

// New creates a core. budget is the number of instructions to retire;
// onDone runs when the budget is reached.
func New(eng *sim.Engine, clock units.Clock, src OpSource, mem MemPort, budget int64, onDone func()) *Core {
	c := &Core{
		eng:          eng,
		clock:        clock,
		src:          src,
		mem:          mem,
		budget:       budget,
		onDone:       onDone,
		retryBackoff: 16 * clock.Period(),
	}
	c.thinkFn = func() {
		c.stats.Retired += c.op.Think
		c.issue(c.op)
	}
	c.budgetFn = func() {
		c.stats.Retired = c.budget
		c.finish()
	}
	c.readDoneFn = func(at units.Time, _ []byte) {
		c.stats.ReadStall += at.Sub(c.issueSince)
		c.step()
	}
	c.retryRdFn = func() { c.issueRead(c.op, c.issueSince) }
	c.retryWrFn = func() { c.issueWrite(c.op, c.issueSince) }
	return c
}

// Start schedules the core's first activity. Call once, before running
// the engine.
func (c *Core) Start() {
	c.eng.After(0, c.step)
}

// Stats returns the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// step fetches the next operation and walks through think -> access.
func (c *Core) step() {
	if c.stats.Finished {
		return
	}
	c.op = c.src.Next()
	think := c.op.Think
	if remaining := c.budget - c.stats.Retired; think >= remaining {
		// The budget retires mid-think: finish without the access.
		c.eng.After(c.clock.Cycles(remaining), c.budgetFn)
		return
	}
	c.eng.After(c.clock.Cycles(think), c.thinkFn)
}

func (c *Core) issue(op workload.Op) {
	c.issueSince = c.eng.Now()
	if op.Write {
		c.issueWrite(op, c.issueSince)
		return
	}
	c.issueRead(op, c.issueSince)
}

func (c *Core) issueRead(op workload.Op, since units.Time) {
	c.stats.Reads++
	if !c.mem.SubmitRead(op.Addr, c.readDoneFn) {
		// Read queue full (rare): back off and retry; the retry does not
		// recount the read.
		c.stats.Reads--
		c.eng.After(c.retryBackoff, c.retryRdFn)
	}
}

func (c *Core) issueWrite(op workload.Op, since units.Time) {
	c.stats.Writes++
	if c.mem.SubmitWrite(op.Addr, op.Data, nil) {
		// Posted: the core only paid the queue-stall time, if any.
		c.stats.WriteStall += c.eng.Now().Sub(since)
		c.step()
		return
	}
	c.stats.Writes--
	c.mem.WhenWriteSpace(c.retryWrFn)
}

func (c *Core) finish() {
	c.stats.Finished = true
	c.stats.FinishedAt = c.eng.Now()
	if c.onDone != nil {
		c.onDone()
	}
}

// IPC returns the core's retired instructions per clock cycle up to its
// finish time (or the given now, if unfinished).
func (s Stats) IPC(clock units.Clock, now units.Time) float64 {
	end := s.FinishedAt
	if !s.Finished {
		end = now
	}
	cycles := float64(units.Duration(end)) / float64(clock.Period())
	if cycles == 0 {
		return 0
	}
	return float64(s.Retired) / cycles
}
