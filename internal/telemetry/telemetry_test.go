package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

func TestRegistryKindsAndOrder(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count", "help a")
	g := reg.Gauge("b.gauge", "help b")
	reg.GaugeFunc("c.fn", "", func() float64 { return 7.5 })
	h := reg.Histogram("d.hist", "")

	c.Add(3)
	c.Inc()
	g.Set(-2.5)
	h.Observe(10)
	h.Observe(1000)

	ms := reg.Metrics()
	if len(ms) != 4 {
		t.Fatalf("Metrics() = %d, want 4", len(ms))
	}
	wantNames := []string{"a.count", "b.gauge", "c.fn", "d.hist"}
	for i, m := range ms {
		if m.Name != wantNames[i] {
			t.Errorf("metric %d = %q, want %q (registration order)", i, m.Name, wantNames[i])
		}
	}
	if v := reg.Get("a.count").Value(); v != 4 {
		t.Errorf("counter value = %v, want 4", v)
	}
	if v := reg.Get("b.gauge").Value(); v != -2.5 {
		t.Errorf("gauge value = %v, want -2.5", v)
	}
	if v := reg.Get("c.fn").Value(); v != 7.5 {
		t.Errorf("func gauge value = %v, want 7.5", v)
	}
	if v := reg.Get("d.hist").Value(); v != 2 {
		t.Errorf("histogram value (count) = %v, want 2", v)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestMetricValueClampsNaN(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("nan", "", func() float64 { return 0.0 / div })
	if v := reg.Get("nan").Value(); v != 0 {
		t.Errorf("NaN clamped to %v, want 0", v)
	}
}

var div float64 // 0, defeats constant folding of 0/0

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", c.Value())
	}
}

func TestHistogramMergeAcrossShards(t *testing.T) {
	var shards [4]*Histogram
	reg := NewRegistry()
	for i := range shards {
		shards[i] = reg.Histogram("h"+string(rune('0'+i)), "")
		for j := 0; j < 100; j++ {
			shards[i].Observe(float64((i + 1) * 10))
		}
	}
	total := &Histogram{}
	for _, s := range shards {
		total.Merge(s)
	}
	if total.Count() != 400 {
		t.Fatalf("merged count = %d, want 400", total.Count())
	}
	// p100 must reflect the largest shard's samples.
	if p := total.Percentile(100); p < 40 {
		t.Errorf("merged p100 = %v, want >= 40", p)
	}
	// Self-merge is a no-op.
	total.Merge(total)
	if total.Count() != 400 {
		t.Errorf("self-merge changed count to %d", total.Count())
	}
}

// A sampler snapshots at exact epoch boundaries, stops by itself when
// the simulation drains, and leaves the engine able to terminate.
func TestSamplerEpochs(t *testing.T) {
	eng := &sim.Engine{}
	reg := NewRegistry()
	c := reg.Counter("work.done", "")
	depth := 0
	reg.GaugeFunc("work.depth", "", func() float64 { return float64(depth) })

	// Simulated workload: an event every 3 us for 30 us.
	for i := 1; i <= 10; i++ {
		i := i
		eng.At(units.Time(i)*units.Time(3*units.Microsecond), func() {
			c.Inc()
			depth = i
		})
	}
	s := NewSampler(eng, reg, 10*units.Microsecond, 0)
	s.Start()
	eng.Run() // must terminate despite the self-rescheduling sampler

	times := s.Times()
	if len(times) < 3 {
		t.Fatalf("epochs = %d, want >= 3 (30us workload, 10us epoch)", len(times))
	}
	for i, at := range times {
		if want := units.Time(i+1) * units.Time(10*units.Microsecond); at != want {
			t.Errorf("epoch %d at %v, want %v", i, at, want)
		}
	}
	done := s.Series("work.done")
	if got := done[len(done)-1]; got != 10 {
		t.Errorf("final work.done = %v, want 10", got)
	}
	// Counter series is monotonic.
	for i := 1; i < len(done); i++ {
		if done[i] < done[i-1] {
			t.Errorf("counter series decreased at %d: %v", i, done)
		}
	}
	if s.Series("work.depth") == nil {
		t.Error("gauge series missing")
	}
	if s.Series("no.such") != nil {
		t.Error("unknown series not nil")
	}
}

// The sampler must not perturb the simulation: event times and counts of
// the underlying workload replay identically with and without sampling.
func TestSamplerIsPassive(t *testing.T) {
	run := func(sample bool) []units.Time {
		eng := &sim.Engine{}
		var trace []units.Time
		var step func(n int)
		step = func(n int) {
			trace = append(trace, eng.Now())
			if n < 20 {
				eng.After(units.Duration(n+1)*units.Microsecond, func() { step(n + 1) })
			}
		}
		eng.At(0, func() { step(0) })
		if sample {
			s := NewSampler(eng, NewRegistry(), 7*units.Microsecond, 0)
			s.Start()
		}
		eng.Run()
		return trace
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("workload event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload timing diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSamplerRingEviction(t *testing.T) {
	eng := &sim.Engine{}
	reg := NewRegistry()
	reg.GaugeFunc("t", "", func() float64 { return float64(eng.Now()) })
	// Keep the engine busy for 100 epochs with a ring of 16.
	for i := 1; i <= 100; i++ {
		eng.At(units.Time(i)*units.Time(units.Microsecond), func() {})
	}
	s := NewSampler(eng, reg, units.Microsecond, 16)
	s.Start()
	eng.Run()
	if s.Epochs() != 16 {
		t.Errorf("retained %d epochs, want 16", s.Epochs())
	}
	if s.Dropped() == 0 {
		t.Error("no epochs dropped despite overflow")
	}
	if s.FirstEpoch() != s.Dropped() {
		t.Errorf("FirstEpoch %d != Dropped %d", s.FirstEpoch(), s.Dropped())
	}
	// Retained epochs are the most recent ones, contiguous.
	times := s.Times()
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != units.Time(units.Microsecond) {
			t.Fatalf("retained times not contiguous: %v", times)
		}
	}
}

func TestExportFormats(t *testing.T) {
	eng := &sim.Engine{}
	reg := NewRegistry()
	c := reg.Counter("layer.ops", "operations")
	h := reg.Histogram("layer.lat", "latency")
	for i := 1; i <= 5; i++ {
		eng.At(units.Time(i)*units.Time(units.Microsecond), func() {
			c.Inc()
			h.Observe(100)
		})
	}
	s := NewSampler(eng, reg, 2*units.Microsecond, 0)
	s.Start()
	eng.Run()

	// CSV.
	var csv bytes.Buffer
	if err := s.WriteSeriesCSV(&csv, "layer.ops"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "epoch,time_ps,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != 1+s.Epochs() {
		t.Errorf("CSV rows = %d, want %d", len(lines)-1, s.Epochs())
	}

	// JSON-lines: every record parses, keys are the metric set.
	var jl bytes.Buffer
	if err := s.WriteJSONLines(&jl); err != nil {
		t.Fatal(err)
	}
	recs := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(recs) != s.Epochs() {
		t.Fatalf("JSONL records = %d, want %d", len(recs), s.Epochs())
	}
	var rec EpochRecord
	if err := json.Unmarshal([]byte(recs[0]), &rec); err != nil {
		t.Fatalf("JSONL record does not parse: %v", err)
	}
	if _, ok := rec.Metrics["layer.ops"]; !ok {
		t.Errorf("JSONL record missing layer.ops: %v", rec.Metrics)
	}

	// Prometheus exposition.
	var prom bytes.Buffer
	if err := WritePrometheus(&prom, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE layer_ops counter", "layer_ops 5",
		"# TYPE layer_lat summary", "layer_lat_count 5", `layer_lat{quantile="0.99"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, prom.String())
		}
	}

	// ExportDir writes the full artifact set.
	dir := t.TempDir()
	if err := s.ExportDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"layer_ops.csv", "layer_lat.csv", JSONLinesFile, PrometheusFile} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", f)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"cpu.ipc":            "cpu_ipc",
		"cache.L1.miss_rate": "cache_L1_miss_rate",
		"a-b/c d!":           "a_b_cd",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
