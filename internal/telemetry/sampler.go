package telemetry

import (
	"sync"

	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

// DefaultRingSize is how many epochs a sampler retains when no explicit
// ring size is configured. At the default 10 us epoch that is ~82 ms of
// simulated time — far beyond any experiment in this repository — while
// bounding memory for long production-scale runs.
const DefaultRingSize = 8192

// Sampler snapshots every metric of a registry on a fixed epoch of
// simulated time. It schedules itself on the simulation engine
// (Engine.After), so samples land at exact epoch boundaries interleaved
// deterministically with simulation events; because sampling only reads
// state, the simulated behaviour is identical to an unsampled run.
//
// Lifecycle: the sampler arms its next tick only while the engine has
// other pending events. When a tick finds the queue otherwise empty the
// simulation is over (events are the only source of new events), so the
// sampler records that final snapshot and stops — this is what lets
// Engine.Run terminate with a sampler attached. Stop() force-stops
// earlier.
type Sampler struct {
	eng   *sim.Engine
	reg   *Registry
	epoch units.Duration
	ring  int

	// preSample, when set, runs at the top of every snapshot (epoch
	// ticks and Finalize alike), before any metric closure is read. The
	// parallel controller registers its barrier here so the sampler
	// always observes a consistent cross-bank cut.
	preSample func()

	mu      sync.Mutex
	stopped bool
	names   []string     // metric order captured at Start
	times   []units.Time // sample timestamps, oldest first
	rows    [][]float64  // rows[i] aligns with names
	dropped int          // epochs evicted from the ring
	taken   int          // total epochs ever sampled
}

// NewSampler creates a sampler over reg with the given epoch (> 0) and
// ring capacity (<= 0 selects DefaultRingSize). Register all metrics
// before Start: the sampler pins the metric set at Start time.
func NewSampler(eng *sim.Engine, reg *Registry, epoch units.Duration, ringSize int) *Sampler {
	if epoch <= 0 {
		panic("telemetry: sampler epoch must be positive")
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Sampler{eng: eng, reg: reg, epoch: epoch, ring: ringSize}
}

// Registry returns the registry the sampler snapshots.
func (s *Sampler) Registry() *Registry { return s.reg }

// OnSample registers fn to run at the start of every snapshot, before
// the first metric closure is evaluated. Use it to quiesce concurrent
// producers (the parallel controller's in-flight bank workers) so each
// epoch row is a consistent cut. Call before Start; only one hook is
// held, a later call replaces the earlier.
func (s *Sampler) OnSample(fn func()) { s.preSample = fn }

// EpochDuration returns the sampling interval.
func (s *Sampler) EpochDuration() units.Duration { return s.epoch }

// Start pins the metric set and schedules the first tick one epoch from
// now. Call once, before running the engine.
func (s *Sampler) Start() {
	s.mu.Lock()
	for _, m := range s.reg.Metrics() {
		s.names = append(s.names, m.Name)
	}
	s.mu.Unlock()
	s.arm()
}

// Stop prevents any further sampling. Already-recorded epochs remain
// readable.
func (s *Sampler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Stopped reports whether the sampler will take no further samples.
func (s *Sampler) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Finalize records one last snapshot at time t — the partial epoch in
// progress — and stops the sampler. The run harness calls it when a
// simulation is cancelled or trips the watchdog, so the counters
// accumulated since the last epoch boundary are exported rather than
// lost. If the sampler already stopped (normal completion records its
// own final snapshot) or t does not advance past the last sample,
// Finalize is a no-op beyond stopping.
func (s *Sampler) Finalize(t units.Time) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	need := len(s.times) == 0 || s.times[len(s.times)-1] < t
	s.mu.Unlock()
	if need {
		s.sample(t)
	}
}

func (s *Sampler) arm() {
	s.eng.After(s.epoch, s.tick)
}

func (s *Sampler) tick() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	s.sample(s.eng.Now())

	// Re-arm only while the simulation still has work queued: if this
	// tick was the last event, rescheduling would keep the engine's
	// queue non-empty forever and Run would never return.
	if s.eng.Pending() > 0 {
		s.arm()
	} else {
		s.Stop()
	}
}

// sample records one snapshot row at time t.
func (s *Sampler) sample(t units.Time) {
	if s.preSample != nil {
		s.preSample()
	}
	metrics := s.reg.Metrics()
	byName := make(map[string]*Metric, len(metrics))
	for _, m := range metrics {
		byName[m.Name] = m
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	row := make([]float64, len(s.names))
	for i, name := range s.names {
		if m := byName[name]; m != nil {
			row[i] = m.Value()
		}
	}
	s.times = append(s.times, t)
	s.rows = append(s.rows, row)
	s.taken++
	if len(s.times) > s.ring {
		evict := len(s.times) - s.ring
		s.times = append(s.times[:0:0], s.times[evict:]...)
		s.rows = append(s.rows[:0:0], s.rows[evict:]...)
		s.dropped += evict
	}
}

// Epochs returns the number of retained epochs.
func (s *Sampler) Epochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.times)
}

// Dropped returns how many old epochs the ring evicted.
func (s *Sampler) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// FirstEpoch returns the index of the oldest retained epoch (equal to
// Dropped): retained epoch i corresponds to absolute epoch FirstEpoch+i.
func (s *Sampler) FirstEpoch() int { return s.Dropped() }

// Times returns the retained sample timestamps, oldest first.
func (s *Sampler) Times() []units.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]units.Time(nil), s.times...)
}

// SeriesNames returns the sampled metric names in registration order.
func (s *Sampler) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names...)
}

// Series returns the retained values of one metric, aligned with
// Times(), or nil if the metric was not sampled.
func (s *Sampler) Series(name string) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	col := -1
	for i, n := range s.names {
		if n == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	out := make([]float64, len(s.rows))
	for i, row := range s.rows {
		out[i] = row[col]
	}
	return out
}

// row returns (copy of) the i-th retained row; exporters iterate with it
// under a consistent lock.
func (s *Sampler) row(i int) (units.Time, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.times[i], append([]float64(nil), s.rows[i]...)
}
