package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Exporters render a sampler's series in three formats:
//
//   - CSV, one file per series (epoch,time_ps,value) — for spreadsheets
//     and gnuplot;
//   - JSON-lines, one record per epoch with every metric — the
//     machine-readable format other tools consume, schema pinned by a
//     golden test;
//   - Prometheus text exposition of the final values — so a run's last
//     snapshot can be scraped or diffed with standard tooling.

// sanitizeName maps a metric name to a filesystem- and
// Prometheus-friendly identifier: dots and dashes become underscores,
// anything else non-alphanumeric is dropped.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '.', r == '-', r == '/':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatValue renders a sample without float noise: integral values
// print as integers (counters stay readable), others with full float64
// round-trip precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSeriesCSV writes one metric's retained series as CSV.
func (s *Sampler) WriteSeriesCSV(w io.Writer, name string) error {
	vals := s.Series(name)
	times := s.Times()
	first := s.FirstEpoch()
	if _, err := fmt.Fprintln(w, "epoch,time_ps,value"); err != nil {
		return err
	}
	for i := range vals {
		if _, err := fmt.Fprintf(w, "%d,%d,%s\n", first+i, int64(times[i]), formatValue(vals[i])); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVDir writes every series as <dir>/<sanitized-name>.csv,
// creating dir if needed.
func (s *Sampler) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range s.SeriesNames() {
		f, err := os.Create(filepath.Join(dir, sanitizeName(name)+".csv"))
		if err != nil {
			return err
		}
		werr := s.WriteSeriesCSV(f, name)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

// EpochRecord is one JSON-lines record: everything the pipeline reported
// at one epoch boundary. Metrics maps metric name to sampled value;
// encoding/json emits keys sorted, so records are byte-deterministic.
type EpochRecord struct {
	Epoch   int                `json:"epoch"`
	TimePs  int64              `json:"time_ps"`
	Metrics map[string]float64 `json:"metrics"`
}

// SnapshotRecord polls every metric of a live registry into one
// EpochRecord — the streaming counterpart of the sampler's ring for
// consumers that tail a long-running process (the fleet broker's
// /metrics/stream endpoint) rather than replay a finished simulation.
// Metric names are keys exactly as registered, matching WriteJSONLines,
// so the same tooling parses both streams.
func SnapshotRecord(reg *Registry, epoch int, timePs int64) EpochRecord {
	ms := reg.Metrics()
	rec := EpochRecord{Epoch: epoch, TimePs: timePs, Metrics: make(map[string]float64, len(ms))}
	for _, m := range ms {
		rec.Metrics[m.Name] = m.Value()
	}
	return rec
}

// WriteJSONLines writes one EpochRecord per retained epoch.
func (s *Sampler) WriteJSONLines(w io.Writer) error {
	names := s.SeriesNames()
	first := s.FirstEpoch()
	enc := json.NewEncoder(w)
	for i := 0; i < s.Epochs(); i++ {
		t, row := s.row(i)
		rec := EpochRecord{Epoch: first + i, TimePs: int64(t), Metrics: make(map[string]float64, len(names))}
		for j, name := range names {
			rec.Metrics[name] = row[j]
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the registry's current values in the
// Prometheus text exposition format (final-state scrape). Histogram
// metrics emit count plus p50/p95/p99 quantile gauges.
func WritePrometheus(w io.Writer, reg *Registry) error {
	for _, m := range reg.Metrics() {
		name := sanitizeName(m.Name)
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, m.Help); err != nil {
				return err
			}
		}
		typ := m.Kind.String()
		if m.Kind == KindHistogram {
			typ = "summary"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		if h := m.Histogram(); h != nil {
			for _, q := range []float64{50, 95, 99} {
				if _, err := fmt.Fprintf(w, "%s{quantile=\"0.%02.0f\"} %s\n",
					name, q, formatValue(h.Percentile(q))); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count()); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(m.Value())); err != nil {
			return err
		}
	}
	return nil
}

// Filenames of ExportDir's fixed-name artifacts.
const (
	JSONLinesFile  = "epochs.jsonl"
	PrometheusFile = "metrics.prom"
)

// ExportDir writes the full artifact set into dir: one CSV per series,
// epochs.jsonl with every epoch record, and metrics.prom with the final
// Prometheus exposition.
func (s *Sampler) ExportDir(dir string) error {
	if err := s.WriteCSVDir(dir); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, JSONLinesFile))
	if err != nil {
		return err
	}
	werr := s.WriteJSONLines(jf)
	if cerr := jf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	pf, err := os.Create(filepath.Join(dir, PrometheusFile))
	if err != nil {
		return err
	}
	werr = WritePrometheus(pf, s.reg)
	if cerr := pf.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
