// Package telemetry is the observability substrate of the simulators: a
// registry of named metrics (monotonic counters, gauges and mergeable
// histograms, all goroutine-safe) plus an epoch sampler that snapshots
// every registered metric on a fixed simulated-time interval into
// ring-buffered time series, and exporters rendering those series as CSV,
// JSON-lines and Prometheus text exposition.
//
// End-of-run scalars (internal/stats, internal/exp) answer "how did the
// run do on average"; this package answers "what did the pipeline do over
// time" — write-queue drain storms, power-budget utilization, SET/RESET
// mix drift across workload phases. Everything here is strictly passive:
// metrics read simulation state, never mutate it, so an instrumented run
// replays the exact same simulation as an uninstrumented one.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"tetriswrite/internal/stats"
)

// Kind classifies a metric for exporters (Prometheus TYPE lines) and
// consumers that want to derive rates from counters.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that can go up and down.
	KindGauge
	// KindHistogram is a distribution; its sampled series value is the
	// cumulative sample count, and exporters render quantiles at the end.
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a goroutine-safe monotonic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n, which must be non-negative.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: negative counter increment")
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a goroutine-safe instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a goroutine-safe, mergeable distribution built on the
// log-scale histogram of internal/stats.
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one sample (non-negative).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.h.Add(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count()
}

// Percentile estimates the p-th percentile.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Percentile(p)
}

// Merge folds other's samples into h — the cross-shard aggregation path
// of parallel experiment runs.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	other.mu.Lock()
	snap := other.h.Clone()
	other.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.h.Merge(&snap)
}

// Metric is one registered series: a name, a kind, a help string and a
// way to read the current value.
type Metric struct {
	Name string
	Kind Kind
	Help string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Value reads the metric's current value. Function-backed metrics are
// evaluated on every call; NaN and infinities are clamped to 0 so every
// exporter stays well-formed.
func (m *Metric) Value() float64 {
	var v float64
	switch {
	case m.counter != nil:
		v = float64(m.counter.Value())
	case m.gauge != nil:
		v = m.gauge.Value()
	case m.hist != nil:
		v = float64(m.hist.Count())
	case m.fn != nil:
		v = m.fn()
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Histogram returns the backing histogram of a KindHistogram metric, or
// nil for scalar metrics.
func (m *Metric) Histogram() *Histogram { return m.hist }

// Registry holds the metrics of one simulation run. The zero value is
// not usable; create registries with NewRegistry. All methods are
// goroutine-safe; registration order is preserved and is the order every
// exporter emits.
type Registry struct {
	mu      sync.Mutex
	metrics []*Metric
	byName  map[string]*Metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Metric)}
}

func (r *Registry) register(m *Metric) {
	if m.Name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.Name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.Name))
	}
	r.byName[m.Name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&Metric{Name: name, Kind: KindCounter, Help: help, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&Metric{Name: name, Kind: KindGauge, Help: help, gauge: g})
	return g
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(&Metric{Name: name, Kind: KindHistogram, Help: help, hist: h})
	return h
}

// CounterFunc registers a counter whose value is polled from fn at
// sample time — the idiomatic way to expose an existing cumulative
// statistic (controller counters, device pulse counts) without touching
// the hot path that maintains it. fn runs on the sampling goroutine (the
// simulation engine) and must be cheap and side-effect-free.
//
// Closures reading single-writer simulation state (scheme statistics,
// controller counters — plain fields, not atomics, by design) stay
// race-free because the sampler's preSample hook quiesces the parallel
// controller's bank workers before any closure runs; see
// Sampler.OnSample. The direct Counter/Gauge types use single atomic
// words (no striping) — per-run metric rates are far below contention
// territory, and a torn read would be a correctness bug, not just noise.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&Metric{Name: name, Kind: KindCounter, Help: help, fn: fn})
}

// GaugeFunc registers a gauge polled from fn at sample time (queue
// depths, utilizations, rates).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&Metric{Name: name, Kind: KindGauge, Help: help, fn: fn})
}

// Metrics returns the registered metrics in registration order. The
// returned slice is a copy; the *Metric values are shared.
func (r *Registry) Metrics() []*Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Metric(nil), r.metrics...)
}

// Get returns the named metric, or nil.
func (r *Registry) Get(name string) *Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// Names returns the sorted metric names — the stable key set of the
// JSON-lines exporter.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}
