package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trace")
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "dedup", "-cores", "2", "-ops", "100",
		"-seed", "5", "-o", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "wrote 100 records") {
		t.Errorf("status line missing: %s", errb.String())
	}

	out.Reset()
	if err := run([]string{"-dump", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	dump := out.String()
	if !strings.Contains(dump, "# trace v1, 2 cores, 64 B lines") {
		t.Errorf("dump header wrong:\n%s", dump)
	}
	lines := strings.Count(dump, "\n")
	if lines != 101 { // header + 100 records
		t.Errorf("dump has %d lines, want 101", lines)
	}
	if !strings.Contains(dump, "core=0") || !strings.Contains(dump, "core=1") {
		t.Error("dump missing per-core records")
	}
}

func TestGenerateToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-ops", "10"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "TWTRACE1") {
		t.Error("stdout stream does not start with the trace magic")
	}
}

func TestErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "bogus"}, &out, &errb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-dump", "/nonexistent/file"}, &out, &errb); err == nil {
		t.Error("missing dump file accepted")
	}
	if err := run([]string{"-nope"}, &out, &errb); err == nil {
		t.Error("unknown flag accepted")
	}
}
