// Command tracegen emits binary memory traces from the synthetic PARSEC
// workload generators, for replay with pcmsim -trace or external
// analysis.
//
// Usage:
//
//	tracegen -workload ferret -ops 100000 -o ferret.trace
//	tracegen -dump ferret.trace | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/version"
	"tetriswrite/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the generator with the given arguments; separated from
// main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl      = fs.String("workload", "vips", "workload profile")
		cores   = fs.Int("cores", 4, "number of cores")
		ops     = fs.Int("ops", 100_000, "operations to emit")
		seed    = fs.Int64("seed", 1, "generator seed")
		out     = fs.String("o", "", "output file (default stdout)")
		dump    = fs.String("dump", "", "dump a trace file as text instead of generating")
		showVer = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("tracegen"))
		return nil
	}

	if *dump != "" {
		return dumpTrace(stdout, *dump)
	}

	prof, err := workload.ProfileByName(*wl)
	if err != nil {
		return err
	}
	par := pcm.DefaultParams()
	recs := trace.Generate(prof, *cores, *seed, par, *ops)

	var sink io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	w, err := trace.NewWriter(sink, *cores, par.LineBytes)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "tracegen: wrote %d records (%s, %d cores, seed %d)\n",
		w.Count(), prof.Name, *cores, *seed)
	return nil
}

func dumpTrace(stdout io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	hdr := r.Header()
	fmt.Fprintf(stdout, "# trace v%d, %d cores, %d B lines\n", hdr.Version, hdr.Cores, hdr.LineBytes)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		kind := "R"
		if rec.Op.Write {
			kind = "W"
		}
		fmt.Fprintf(stdout, "core=%d %s addr=%d think=%d\n", rec.Core, kind, rec.Op.Addr, rec.Op.Think)
	}
}
