package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-fig", "10", "-writes", "100"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 10") {
		t.Errorf("missing Figure 10:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Figure 11") {
		t.Error("unrequested figure printed")
	}
}

func TestRunTables(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-table", "2"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table II") {
		t.Error("missing Table II")
	}
	out.Reset()
	if err := run([]string{"-table", "3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table III") {
		t.Error("missing Table III")
	}
}

func TestRunFullSystemFigure(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-fig", "13", "-instr", "30000", "-writes", "100"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IPC improvement") {
		t.Errorf("missing Figure 13 output:\n%s", out.String())
	}
}

func TestRunSweep(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-sweep", "budget", "-writes", "50"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Power-budget sweep") {
		t.Error("missing budget sweep")
	}
	if err := run([]string{"-sweep", "bogus"}, &out, &errb); err == nil {
		t.Error("unknown sweep accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Error("no-op invocation accepted")
	}
}

func TestRunCheck(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-check", "-writes", "300", "-instr", "50000"}, &out, &errb)
	if err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all 9 reproduction checks passed") {
		t.Errorf("certificate line missing:\n%s", out.String())
	}
}

func TestRunSeedsAndFormats(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-seeds", "2", "-instr", "20000", "-writes", "50"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "across seeds") {
		t.Errorf("seed sweep output missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-fig", "10", "-writes", "50", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "workload,baseline,fnw") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-fig", "10", "-writes", "50", "-plot"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") {
		t.Error("plot output has no bars")
	}
	out.Reset()
	if err := run([]string{"-fig", "11", "-instr", "20000", "-writes", "50", "-tail"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P99 read latency") {
		t.Error("tail table missing")
	}
	out.Reset()
	if err := run([]string{"-endurance", "-instr", "60000"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Endurance") {
		t.Error("endurance table missing")
	}
}

func TestRunMLC(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-mlc"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SLC vs MLC") || !strings.Contains(out.String(), "ratio") {
		t.Errorf("mlc output wrong:\n%s", out.String())
	}
}
