package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-fig", "10", "-writes", "100"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 10") {
		t.Errorf("missing Figure 10:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Figure 11") {
		t.Error("unrequested figure printed")
	}
}

func TestRunTables(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-table", "2"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table II") {
		t.Error("missing Table II")
	}
	out.Reset()
	if err := run(context.Background(), []string{"-table", "3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table III") {
		t.Error("missing Table III")
	}
}

func TestRunFullSystemFigure(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-fig", "13", "-instr", "30000", "-writes", "100"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IPC improvement") {
		t.Errorf("missing Figure 13 output:\n%s", out.String())
	}
}

func TestRunSweep(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-sweep", "budget", "-writes", "50"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Power-budget sweep") {
		t.Error("missing budget sweep")
	}
	if err := run(context.Background(), []string{"-sweep", "bogus"}, &out, &errb); err == nil {
		t.Error("unknown sweep accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), nil, &out, &errb); err == nil {
		t.Error("no-op invocation accepted")
	}
}

func TestRunCheck(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-check", "-writes", "300", "-instr", "50000"}, &out, &errb)
	if err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all 9 reproduction checks passed") {
		t.Errorf("certificate line missing:\n%s", out.String())
	}
}

func TestRunSeedsAndFormats(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-seeds", "2", "-instr", "20000", "-writes", "50"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "across seeds") {
		t.Errorf("seed sweep output missing:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-fig", "10", "-writes", "50", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "workload,baseline,fnw") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), []string{"-fig", "10", "-writes", "50", "-plot"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") {
		t.Error("plot output has no bars")
	}
	out.Reset()
	if err := run(context.Background(), []string{"-fig", "11", "-instr", "20000", "-writes", "50", "-tail"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P99 read latency") {
		t.Error("tail table missing")
	}
	out.Reset()
	if err := run(context.Background(), []string{"-endurance", "-instr", "60000"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Endurance") {
		t.Error("endurance table missing")
	}
}

func TestRunMLC(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-mlc"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SLC vs MLC") || !strings.Contains(out.String(), "ratio") {
		t.Errorf("mlc output wrong:\n%s", out.String())
	}
}

func TestRunEpochSummary(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-fig", "11", "-instr", "40000", "-epoch", "20us"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Epoch telemetry", "wq mean", "budget util", "tetris"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("epoch summary missing %q:\n%s", want, out.String())
		}
	}
	// -epoch needs the full-system figures to have anything to sample.
	if err := run(context.Background(), []string{"-fig", "10", "-epoch", "20us"}, &out, &errb); err == nil {
		t.Error("-epoch with a chip-level figure accepted")
	}
	if err := run(context.Background(), []string{"-fig", "11", "-epoch", "bogus"}, &out, &errb); err == nil {
		t.Error("bad -epoch value accepted")
	}
}

func TestRunBenchJSON(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-bench-json", "-bench-dir", dir, "-writes", "200"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasPrefix(entries[0].Name(), "BENCH_") ||
		!strings.HasSuffix(entries[0].Name(), ".json") {
		t.Fatalf("unexpected artifact listing: %v", entries)
	}
	raw, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Date    string `json:"date"`
		Writes  int    `json:"writes"`
		Schemes []struct {
			Scheme     string  `json:"scheme"`
			WriteUnits float64 `json:"write_units_per_write"`
			NsPerOp    float64 `json:"ns_per_op"`
			VerifyNs   float64 `json:"verify_overhead_ns_per_write"`
		} `json:"schemes"`
		FullSystemNs float64 `json:"full_system_ns_per_op"`
		AllocsPerOp  float64 `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, raw)
	}
	if art.Writes != 200 || len(art.Schemes) != 5 {
		t.Errorf("artifact shape wrong: writes=%d schemes=%d", art.Writes, len(art.Schemes))
	}
	for _, s := range art.Schemes {
		if s.WriteUnits <= 0 || s.NsPerOp <= 0 || s.VerifyNs <= 0 {
			t.Errorf("scheme %s has non-positive measurements: %+v", s.Scheme, s)
		}
	}
	// The deterministic axis: baseline plans 8 units, tetris well under 2.
	if u := art.Schemes[0].WriteUnits; u < 7.9 || u > 8.1 {
		t.Errorf("baseline write units = %v, want 8", u)
	}
	if u := art.Schemes[4].WriteUnits; u <= 0 || u >= 2 {
		t.Errorf("tetris write units = %v, want in (0, 2)", u)
	}
	if art.FullSystemNs <= 0 || art.AllocsPerOp <= 0 {
		t.Errorf("full-system trajectory point missing: %v ns/op, %v allocs/op",
			art.FullSystemNs, art.AllocsPerOp)
	}
}

// TestParallelMatchesSerialOutput is the CLI-level determinism contract:
// -parallel 1 and -parallel 4 produce byte-identical tables.
func TestParallelMatchesSerialOutput(t *testing.T) {
	args := []string{"-fig", "13", "-instr", "10000", "-writes", "50"}
	var serial, parallel, errb bytes.Buffer
	if err := run(context.Background(), append(args, "-parallel", "1"), &serial, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-parallel", "4"), &parallel, &errb); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-parallel 4 output differs from -parallel 1:\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
	if serial.Len() == 0 {
		t.Fatal("no output rendered")
	}
}

// TestIdenticalFlagsGoldenOutput is the harness-level determinism
// regression test: two runs with identical flags emit byte-identical
// tables. The flag set deliberately crosses every randomness source the
// harness owns — the seeded workload generators, the full-system sweep,
// and the -mlc comparison, whose drift sampling draws from the
// harness-local seeded *rand.Rand (a global-rand regression here would
// show up as run-to-run drift).
func TestIdenticalFlagsGoldenOutput(t *testing.T) {
	args := []string{"-fig", "13", "-instr", "10000", "-writes", "50", "-mlc", "-seed", "3"}
	var first, second, errb bytes.Buffer
	if err := run(context.Background(), args, &first, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), args, &second, &errb); err != nil {
		t.Fatal(err)
	}
	if first.Len() == 0 {
		t.Fatal("no output rendered")
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("identical invocations diverged:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

// TestEngineModeFlag: -engine-mode parallel renders byte-identical
// tables to the serial default, and unknown modes are rejected before
// any simulation work.
func TestEngineModeFlag(t *testing.T) {
	args := []string{"-fig", "13", "-instr", "10000", "-writes", "50"}
	var serial, parallel, errb bytes.Buffer
	if err := run(context.Background(), append(args, "-engine-mode", "serial"), &serial, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-engine-mode", "parallel"), &parallel, &errb); err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 || serial.String() != parallel.String() {
		t.Errorf("-engine-mode parallel output differs from serial:\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
	if err := run(context.Background(), []string{"-fig", "13", "-engine-mode", "turbo"}, &serial, &errb); err == nil {
		t.Fatal("unknown -engine-mode accepted")
	}
}

// TestCancelledSweepRendersPartials: a pre-cancelled context fails the
// sweep but still reports how many cells finished.
func TestCancelledSweepRendersPartials(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	err := run(ctx, []string{"-fig", "13", "-instr", "10000", "-writes", "50"}, &out, &errb)
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
}

func TestBadParallelFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "13", "-parallel", "-2"}, &out, &errb); err == nil {
		t.Fatal("negative -parallel accepted")
	}
	if err := run(context.Background(), []string{"-fig", "13", "-run-timeout", "-1s"}, &out, &errb); err == nil {
		t.Fatal("negative -run-timeout accepted")
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	err := run(context.Background(),
		[]string{"-table", "2", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
