// Command tetrisbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	tetrisbench -all                 # everything
//	tetrisbench -fig 10              # one figure (3, 4, 10, 11, 12, 13, 14)
//	tetrisbench -table 3             # one table (2 or 3)
//	tetrisbench -fig 11 -instr 2000000 -writes 20000 -seed 7
//
// Scale knobs: -writes (chip-level experiments), -instr (per-core
// instruction budget of the full-system experiments), -cores, -seed.
// Supervision knobs: -parallel (concurrent full-system runs; any value
// produces bit-identical tables), -run-timeout (wall-clock limit per
// run). Ctrl-C stops the sweep gracefully: completed cells are rendered
// as partial tables before exiting nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tetriswrite/internal/exp"
	"tetriswrite/internal/mlc"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/prof"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/stats"
	"tetriswrite/internal/units"
	"tetriswrite/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "tetrisbench: %v\n", err)
		os.Exit(1)
	}
}

// run executes the harness with the given arguments; separated from main
// for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("tetrisbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.Int("fig", 0, "figure to regenerate (3, 4, 10, 11, 12, 13, 14)")
		table      = fs.Int("table", 0, "table to regenerate (2 or 3)")
		all        = fs.Bool("all", false, "regenerate every table and figure")
		writes     = fs.Int("writes", 5000, "line writes sampled per workload (figures 3, 10)")
		instr      = fs.Int64("instr", 1_000_000, "per-core instruction budget (figures 11-14)")
		cores      = fs.Int("cores", 4, "number of cores")
		seed       = fs.Int64("seed", 1, "workload seed")
		seq        = fs.Bool("sequential", false, "disable parallel simulation")
		par        = fs.Int("parallel", 0, "concurrent full-system simulations (0 = all CPUs; tables are bit-identical at any value)")
		runTO      = fs.Duration("run-timeout", 0, "wall-clock limit per full-system simulation, e.g. 5m (0 = none)")
		engine     = fs.String("engine", "", "event queue implementation: wheel (default) or heap; tables are bit-identical")
		engineMode = fs.String("engine-mode", "", "execution mode: serial (default) or parallel (per-bank planning workers); tables are bit-identical")
		schemeList = fs.String("schemes", "", "comma-separated scheme names for the full-system figures (registry names, composable with +, e.g. baseline,tetris,dcw+flipmin,adaptive); empty = the paper set; the first is the normalization baseline")
		energy     = fs.Bool("energy", false, "also print the energy-per-write table with the full-system figures")
		sweep      = fs.String("sweep", "", "extra sweep beyond the paper: 'line' (64/128/256 B) or 'budget' (32..4)")
		endur      = fs.Bool("endurance", false, "also run the endurance (wear leveling) table")
		faults     = fs.Bool("faults", false, "also run the fault-tolerance (verify-retry + line sparing) table")
		check      = fs.Bool("check", false, "verify the paper's qualitative claims and print a reproduction certificate")
		plot       = fs.Bool("plot", false, "render figures as bar charts instead of tables")
		tail       = fs.Bool("tail", false, "also print the P99 read latency table with the full-system figures")
		seeds      = fs.Int("seeds", 0, "run the seed-robustness sweep over this many seeds")
		csv        = fs.Bool("csv", false, "render figures as CSV instead of tables")
		mlcCmp     = fs.Bool("mlc", false, "print the SLC-vs-MLC write-time comparison (background section)")
		line       = fs.Int("line", 0, "cache line size in bytes (default 64; 128/256 model POWER7/zEnterprise)")

		crashEvery = fs.Int64("crash-every", 0, "run the crash-consistency sweep: cut power at every Kth pulse boundary of every (workload, scheme) cell, recover, resume, and print the recovery classification table")
		crashCuts  = fs.Int("crash-cuts", 0, "cap on cut points per cell of the crash sweep, subsampled evenly (0 = 8)")

		epochStr   = fs.String("epoch", "", "attach epoch telemetry to the full-system figures and print the per-scheme summary, e.g. 10us")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON  = fs.Bool("bench-json", false, "write a BENCH_<date>.json perf-trajectory artifact and exit")
		benchDir   = fs.String("bench-dir", ".", "directory for the -bench-json artifact")
		showVer    = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("tetrisbench"))
		return nil
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	if *par < 0 {
		return fmt.Errorf("-parallel %d: worker count cannot be negative", *par)
	}
	if *runTO < 0 {
		return fmt.Errorf("-run-timeout %v: cannot be negative", *runTO)
	}
	if !sim.QueueKind(*engine).Valid() {
		return fmt.Errorf("-engine %q: want wheel or heap", *engine)
	}
	if !sim.EngineMode(*engineMode).Valid() {
		return fmt.Errorf("-engine-mode %q: want serial or parallel", *engineMode)
	}
	opt := exp.Options{
		Writes:      *writes,
		InstrBudget: *instr,
		Cores:       *cores,
		Seed:        *seed,
		Sequential:  *seq,
		Parallel:    *par,
		RunTimeout:  *runTO,
		EngineQueue: sim.QueueKind(*engine),
		EngineMode:  sim.EngineMode(*engineMode),
	}
	if *schemeList != "" {
		for _, n := range strings.Split(*schemeList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				opt.Schemes = append(opt.Schemes, n)
			}
		}
		// Fail fast on typos, before any simulation work.
		if _, err := exp.ResolveSchemes(opt.Schemes); err != nil {
			return fmt.Errorf("-schemes: %w", err)
		}
	}
	if *epochStr != "" {
		epoch, err := units.ParseDuration(*epochStr)
		if err != nil {
			return fmt.Errorf("-epoch: %w", err)
		}
		opt.Epoch = epoch
	}
	if *line > 0 {
		par := pcm.DefaultParams()
		par.LineBytes = *line
		if err := par.Validate(); err != nil {
			return fmt.Errorf("-line %d: %w", *line, err)
		}
		opt.Params = par
	}

	if *check {
		results, err := exp.CheckShapes(opt)
		if err != nil {
			return err
		}
		failed := 0
		for _, r := range results {
			status := "PASS"
			if !r.OK {
				status = "FAIL"
				failed++
			}
			fmt.Fprintf(stdout, "%s  %-55s %s\n", status, r.Name, r.Detail)
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d reproduction checks failed", failed, len(results))
		}
		fmt.Fprintf(stdout, "all %d reproduction checks passed\n", len(results))
		return nil
	}

	if *crashEvery > 0 {
		copt := exp.CrashSweepOptions{Options: opt, Every: *crashEvery, MaxCuts: *crashCuts}
		res, err := exp.CrashSweep(copt)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res.Table())
		return nil
	}
	if *crashCuts != 0 {
		return fmt.Errorf("-crash-cuts needs -crash-every")
	}

	if *benchJSON {
		return writeBenchArtifact(stdout, opt, *benchDir)
	}

	if *mlcCmp {
		printMLC(stdout, opt)
	}

	if !*all && *fig == 0 && *table == 0 && *sweep == "" && !*endur && !*faults && *seeds == 0 && !*mlcCmp {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -fig N, -table N, -sweep, -endurance, -faults, -seeds or -bench-json")
	}

	needFull := *all || (*fig >= 11 && *fig <= 14)
	if opt.Epoch > 0 && !needFull {
		return fmt.Errorf("-epoch only applies to the full-system figures; add -all or -fig 11..14")
	}
	// sweepErr carries an interrupted or partially failed sweep: the
	// tables render with whatever cells completed and the process still
	// exits nonzero.
	var fr *exp.FullResults
	var sweepErr error
	if needFull {
		fr, sweepErr = exp.RunFullSystemCtx(ctx, opt)
		if fr == nil {
			return sweepErr
		}
		if sweepErr != nil {
			total := len(fr.Profiles) * len(fr.Schemes)
			done := total - fr.Failed()
			if done == 0 {
				return sweepErr
			}
			fmt.Fprintf(stderr, "tetrisbench: sweep incomplete (%d of %d cells finished): %v\n",
				done, total, sweepErr)
			fmt.Fprintf(stderr, "tetrisbench: rendering partial tables from the completed cells\n")
		}
	}

	show := func(n int) bool { return *all || *fig == n }
	showTable := func(n int) bool { return *all || *table == n }
	render := func(t *stats.Table) {
		switch {
		case *plot:
			fmt.Fprintln(stdout, stats.FromTable(t))
		case *csv:
			fmt.Fprint(stdout, t.CSV())
		default:
			fmt.Fprintln(stdout, t)
		}
	}

	if *seeds > 0 {
		list := make([]int64, *seeds)
		for i := range list {
			list[i] = opt.Seed + int64(i)
		}
		tb, err := exp.SeedSpread(opt, list)
		if err != nil {
			return err
		}
		render(tb)
		return nil
	}

	if showTable(2) {
		printTable2(stdout)
	}
	if showTable(3) {
		render(exp.Table3(opt))
	}
	if show(3) {
		render(exp.Figure3(opt))
	}
	if show(4) {
		fmt.Fprintln(stdout, exp.Figure4(pcm.DefaultParams()))
	}
	if show(10) {
		render(exp.Figure10(opt))
	}
	if show(11) {
		render(fr.Figure11())
	}
	if show(12) {
		render(fr.Figure12())
	}
	if show(13) {
		render(fr.Figure13())
	}
	if show(14) {
		render(fr.Figure14())
	}
	if needFull && (*energy || *all) {
		render(fr.EnergyTable())
	}
	if needFull && (*tail || *all) {
		render(fr.TailLatency())
	}
	if needFull && opt.Epoch > 0 {
		render(fr.EpochSummary())
	}
	switch *sweep {
	case "":
	case "line":
		render(exp.LineSizeSweep(opt))
	case "budget":
		render(exp.BudgetSweep(opt))
	default:
		return fmt.Errorf("unknown sweep %q (line or budget)", *sweep)
	}
	if *all {
		render(exp.LineSizeSweep(opt))
		render(exp.BudgetSweep(opt))
	}
	if (*endur || *all) && ctx.Err() == nil {
		tb, err := exp.EnduranceTable(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, tb)
	}
	if (*faults || *all) && ctx.Err() == nil {
		tb, err := exp.FaultToleranceTable(opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, tb)
	}
	return sweepErr
}

// writeBenchArtifact measures the perf trajectory and writes it to
// BENCH_<date>.json in dir, printing the path and rows to stdout.
func writeBenchArtifact(stdout io.Writer, opt exp.Options, dir string) error {
	date := time.Now().UTC().Format("2006-01-02")
	art, err := exp.BenchTrajectory(opt, date)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+date+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := art.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%s, %d writes)\n", path, art.Workload, art.Writes)
	for _, row := range art.Schemes {
		fmt.Fprintf(stdout, "  %-10s %6.3f units/write  %8.1f ns/op  %8.1f verify-ns/write\n",
			row.Scheme, row.WriteUnits, row.NsPerOp, row.VerifyOverheadNsPerWrite)
	}
	fmt.Fprintf(stdout, "  full-system %.0f ns/op, %.0f allocs/op\n",
		art.FullSystemNsPerOp, art.AllocsPerOp)
	return nil
}

// printMLC prints the SLC-vs-MLC comparison backing the paper's "we
// focus on SLC PCM for its better write performance".
func printMLC(w io.Writer, opt exp.Options) {
	rng := rand.New(rand.NewSource(opt.Seed))
	bits := make([]bool, 512)
	for i := range bits {
		bits[i] = rng.Intn(2) == 0
	}
	cmp, err := mlc.CompareSLC(mlc.DefaultParams(), bits)
	if err != nil {
		fmt.Fprintf(w, "mlc comparison failed: %v\n", err)
		return
	}
	fmt.Fprintln(w, "== SLC vs MLC: storing one 64 B line (512 random bits) ==")
	fmt.Fprintf(w, "SLC: %4d cells, %v serialized programming time\n", cmp.SLCCells, cmp.SLCTime)
	fmt.Fprintf(w, "MLC: %4d cells, %v (%d partial pulses, %d verifies)\n",
		cmp.MLCCells, cmp.MLCTime, cmp.MLCPartial, cmp.MLCVerifies)
	fmt.Fprintf(w, "MLC/SLC time ratio: %.2fx — the reason the paper's scheduling problem is posed for SLC\n\n",
		float64(cmp.MLCTime)/float64(cmp.SLCTime))
}

// printTable2 prints the simulation parameters (the paper's Table II) as
// configured in this build.
func printTable2(w io.Writer) {
	p := pcm.DefaultParams()
	fmt.Fprintln(w, "== Table II: parameters of simulation ==")
	fmt.Fprintf(w, "CPU                  4-core, 2 GHz, blocking-read cores\n")
	fmt.Fprintf(w, "Cache line           %d B\n", p.LineBytes)
	fmt.Fprintf(w, "Memory controller    FRFCFS read-priority, 32-entry R/W queues, write drain on full\n")
	fmt.Fprintf(w, "Memory organization  %d GB SLC PCM, single rank, %d banks\n", p.CapacityBytes>>30, p.NumBanks)
	fmt.Fprintf(w, "PCM organization     %d x X%d chips per bank, %d B write unit\n",
		p.NumChips, p.ChipWidthBits, p.WriteUnitBytes())
	fmt.Fprintf(w, "Memory timing        READ %v, RESET %v, SET %v (K=%d)\n", p.TRead, p.TReset, p.TSet, p.K())
	fmt.Fprintf(w, "Memory energy        RESET current / SET current = %d (L)\n", p.L())
	fmt.Fprintf(w, "Power budget         %d SET-currents per chip (%d per bank), GCP %v\n",
		p.ChipBudget, p.BankBudget(), p.GlobalChargePump)
	fmt.Fprintln(w)
}
