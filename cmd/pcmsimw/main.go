// Command pcmsimw is a sweep-service worker: it registers with a
// pcmsimd broker, pulls shard leases, runs each full-system simulation
// and reports the summary back. Many workers share one broker; the
// broker's lease machinery handles any of them dying at any moment.
//
// Usage:
//
//	pcmsimw -broker host:7077 -slots 4
//
// SIGTERM/SIGINT exits gracefully: running shards are cancelled and the
// worker deregisters so its leases requeue immediately. A SIGKILL (or a
// crash) is also fine — the broker notices the missed heartbeats and
// retries the leased shards on surviving workers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"tetriswrite/internal/fleet"
	"tetriswrite/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "pcmsimw: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcmsimw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	host, _ := os.Hostname()
	if host == "" {
		host = "pcmsimw"
	}
	var (
		broker  = fs.String("broker", "localhost:7077", "broker RPC address")
		name    = fs.String("name", host, "worker name reported to the broker")
		slots   = fs.Int("slots", runtime.GOMAXPROCS(0), "concurrent shard simulations")
		showVer = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("pcmsimw"))
		return nil
	}
	if *slots <= 0 {
		return fmt.Errorf("-slots %d: want >= 1", *slots)
	}

	logger := log.New(stderr, "pcmsimw: ", log.LstdFlags|log.Lmsgprefix)
	logger.Printf("%s", version.String("pcmsimw"))
	w := fleet.NewWorker(fleet.WorkerConfig{
		Broker:  *broker,
		Name:    *name,
		Slots:   *slots,
		Version: version.String("pcmsimw"),
		Logf:    logger.Printf,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return w.Run(ctx)
}
