// Command pcmsimd is the sweep-service broker: it accepts sweep jobs
// (workload x scheme x seed grids) over HTTP, fans the shards out to a
// fleet of pcmsimw workers over net/rpc, and survives worker crashes,
// broker restarts and client disconnects.
//
// Usage:
//
//	pcmsimd -rpc :7077 -http :7070 -journal pcmsimd.journal.jsonl
//
// Clients:
//
//	curl -s -XPOST localhost:7070/jobs -d '{"figs":[13],"instr":20000}'
//	curl -s localhost:7070/jobs/j0000            # status
//	curl -s localhost:7070/jobs/j0000/wait       # block until terminal
//	curl -s localhost:7070/jobs/j0000/result     # rendered tables
//	curl -sN localhost:7070/jobs/j0000/events    # live JSON-lines events
//	curl -s localhost:7070/metrics               # Prometheus exposition
//	curl -sN 'localhost:7070/metrics/stream?every=2s'
//
// SIGTERM/SIGINT drains: submissions stop, running jobs finish (bounded
// by -drain-timeout), and whatever remains resumes from the journal on
// the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/rpc"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tetriswrite/internal/fleet"
	"tetriswrite/internal/runner"
	"tetriswrite/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "pcmsimd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcmsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rpcAddr  = fs.String("rpc", ":7077", "worker RPC listen address")
		httpAddr = fs.String("http", ":7070", "client HTTP listen address")
		journal  = fs.String("journal", "pcmsimd.journal.jsonl", "shard-completion journal path ('' disables resume)")
		lease    = fs.Duration("lease", 5*time.Second, "worker lease TTL (missed heartbeats past this deregister the worker)")
		poll     = fs.Duration("poll", 200*time.Millisecond, "idle poll interval dictated to workers")
		backoff  = fs.Duration("backoff", 500*time.Millisecond, "base shard retry backoff")
		maxBack  = fs.Duration("max-backoff", 10*time.Second, "shard retry backoff cap")
		jitter   = fs.Float64("jitter", 0.2, "shard retry jitter fraction (0..1)")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for running jobs before exiting anyway")
		showVer  = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("pcmsimd"))
		return nil
	}
	if *jitter < 0 || *jitter > 1 {
		return fmt.Errorf("-jitter %v: want 0..1", *jitter)
	}

	logger := log.New(stderr, "pcmsimd: ", log.LstdFlags|log.Lmsgprefix)
	broker, err := fleet.New(fleet.Config{
		LeaseTTL:    *lease,
		Poll:        *poll,
		Retry:       runner.Backoff{Base: *backoff, Max: *maxBack, Jitter: *jitter},
		JournalPath: *journal,
		Logf:        logger.Printf,
	})
	if err != nil {
		return err
	}
	defer broker.Close()

	rpcSrv := rpc.NewServer()
	if err := rpcSrv.RegisterName(fleet.RPCService, broker.RPC()); err != nil {
		return err
	}
	rpcLn, err := net.Listen("tcp", *rpcAddr)
	if err != nil {
		return err
	}
	defer rpcLn.Close()
	go acceptRPC(rpcSrv, rpcLn)

	httpSrv := &http.Server{Addr: *httpAddr, Handler: broker.Handler()}
	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return err
	}
	logger.Printf("%s", version.String("pcmsimd"))
	logger.Printf("serving: workers rpc=%s, clients http=%s, journal=%s",
		rpcLn.Addr(), httpLn.Addr(), *journal)
	go httpSrv.Serve(httpLn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	logger.Printf("signal received: draining (up to %v)", *drainTO)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := broker.Drain(drainCtx); err != nil {
		logger.Printf("%v", err)
	} else {
		logger.Printf("drained clean")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutCtx)
	return nil
}

// acceptRPC serves worker connections until the listener closes.
func acceptRPC(srv *rpc.Server, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go srv.ServeConn(conn)
	}
}
