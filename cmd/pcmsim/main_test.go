package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/workload"
)

func TestRunBasic(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "canneal", "-scheme", "tetris", "-instr", "30000"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	for _, want := range []string{"workload       canneal", "scheme         tetris", "write units", "energy"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagsValidation(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-scheme", "bogus"},
		{"-workload", "bogus"},
		{"-line", "60"}, // not a multiple of the write unit
		{"-badflag"},
		{"-instr", "0"},
		{"-instr", "-5"},
		{"-cores", "0"},
		{"-budget", "-1"},
		{"-banks", "0"},
		{"-subarrays", "-2"},
		{"-verify-retries", "-1"},
		{"-spare", "-8"},
		{"-endurance-cv", "-0.5"},            // negative CV
		{"-transient-rate", "1.5"},           // outside [0,1)
		{"-endurance-cv", "0.2"},             // CV without -endurance
		{"-fault-seed", "7"},                 // fault knob, no failure mode
		{"-verify-retries", "5"},             // ditto
		{"-spare", "32"},                     // ditto
		{"-fault-seed", "7", "-spare", "32"}, // several orphans at once
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// The orphan message names the offending flags.
	err := run(context.Background(), []string{"-fault-seed", "7", "-spare", "32"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "-fault-seed") || !strings.Contains(err.Error(), "-spare") {
		t.Errorf("orphan fault flags error unhelpful: %v", err)
	}
}

// The fault flags thread through to the platform: a faulty run prints
// the recovery counters, and the same -fault-seed reproduces them.
func TestRunWithFaultFlags(t *testing.T) {
	args := []string{"-workload", "vips", "-scheme", "dcw", "-instr", "40000",
		"-endurance", "3", "-endurance-cv", "0.25", "-transient-rate", "0.002",
		"-fault-seed", "7", "-verify-retries", "4", "-spare", "32"}
	var out1, out2, errb bytes.Buffer
	if err := run(context.Background(), args, &out1, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	for _, want := range []string{"faults", "wear-out", "sparing", "verify time"} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out1.String())
		}
	}
	if err := run(context.Background(), args, &out2, &errb); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("same -fault-seed produced different output:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	// A transient-only run needs no -endurance and still verifies.
	var out3 bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "vips", "-instr", "30000",
		"-transient-rate", "0.01"}, &out3, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3.String(), "faults") {
		t.Errorf("transient-only run missing fault stats:\n%s", out3.String())
	}
}

func TestRunWithSubarraysAndPausing(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "vips", "-scheme", "dcw", "-instr", "30000",
		"-subarrays", "4", "-pausing"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "overlap") {
		t.Errorf("expected overlap statistics in output:\n%s", out.String())
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	// Generate a trace with the tracegen logic equivalent: use the trace
	// package through a tiny file.
	if err := writeTestTrace(path); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "ferret", "-scheme", "3stage", "-instr", "50000",
		"-trace", path}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ferret (trace)") {
		t.Errorf("trace replay output wrong:\n%s", out.String())
	}
	// Missing file errors cleanly.
	if err := run(context.Background(), []string{"-trace", filepath.Join(dir, "nope")}, &out, &errb); err == nil {
		t.Error("missing trace file accepted")
	}
}

func writeTestTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return emitTrace(f)
}

func emitTrace(f *os.File) error {
	par := pcmDefaultForTest()
	prof, err := workload.ProfileByName("ferret")
	if err != nil {
		return err
	}
	recs := trace.Generate(prof, 2, 3, par, 500)
	w, err := trace.NewWriter(f, 2, par.LineBytes)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}

func pcmDefaultForTest() pcm.Params { return pcm.DefaultParams() }

// TestRunWithGuard: -guard validates the run and reports its counters
// without changing any simulation result.
func TestRunWithGuard(t *testing.T) {
	args := []string{"-workload", "vips", "-scheme", "tetris", "-instr", "30000"}
	var plain, guarded, errb bytes.Buffer
	if err := run(context.Background(), args, &plain, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-guard", "-deep-checks"), &guarded, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(guarded.String(), "guard") {
		t.Errorf("guarded run missing guard counters:\n%s", guarded.String())
	}
	// Minus its own counter line, the guarded report is byte-identical:
	// the guard observes, it never perturbs.
	var kept []string
	for _, line := range strings.Split(guarded.String(), "\n") {
		if strings.HasPrefix(line, "guard ") {
			continue
		}
		kept = append(kept, line)
	}
	if got := strings.Join(kept, "\n"); got != plain.String() {
		t.Errorf("guard changed the report:\nplain:\n%s\nguarded:\n%s", plain.String(), guarded.String())
	}
}

func TestRunGuardFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-deep-checks"}, &out, &errb); err == nil {
		t.Error("-deep-checks without -guard accepted")
	}
	if err := run(context.Background(), []string{"-run-timeout", "-1s"}, &out, &errb); err == nil {
		t.Error("negative -run-timeout accepted")
	}
	if err := run(context.Background(), []string{"-max-simtime", "bogus"}, &out, &errb); err == nil {
		t.Error("unparseable -max-simtime accepted")
	}
}

// TestRunMaxEventsBudget: an absurdly small event budget aborts the run
// with a budget error that names the limit.
func TestRunMaxEventsBudget(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "vips", "-instr", "50000",
		"-max-events", "100"}, &out, &errb)
	if err == nil {
		t.Fatal("run under a 100-event budget succeeded")
	}
	if !strings.Contains(err.Error(), "event budget") && !strings.Contains(err.Error(), "100") {
		t.Errorf("budget error unhelpful: %v", err)
	}
}

// TestRunTraceLineSizeMismatch: replaying a trace against a platform
// with a different line size is refused up front, naming both sizes.
func TestRunTraceLineSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	if err := writeTestTrace(path); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-trace", path, "-line", "128"}, &out, &errb)
	if err == nil {
		t.Fatal("line-size mismatch accepted")
	}
	if !strings.Contains(err.Error(), "64") || !strings.Contains(err.Error(), "128") {
		t.Errorf("mismatch error does not name both sizes: %v", err)
	}
}
