package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/workload"
)

func TestRunBasic(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-workload", "canneal", "-scheme", "tetris", "-instr", "30000"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	for _, want := range []string{"workload       canneal", "scheme         tetris", "write units", "energy"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagsValidation(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-scheme", "bogus"},
		{"-workload", "bogus"},
		{"-line", "60"}, // not a multiple of the write unit
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithSubarraysAndPausing(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-workload", "vips", "-scheme", "dcw", "-instr", "30000",
		"-subarrays", "4", "-pausing"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "overlap") {
		t.Errorf("expected overlap statistics in output:\n%s", out.String())
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	// Generate a trace with the tracegen logic equivalent: use the trace
	// package through a tiny file.
	if err := writeTestTrace(path); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run([]string{"-workload", "ferret", "-scheme", "3stage", "-instr", "50000",
		"-trace", path}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ferret (trace)") {
		t.Errorf("trace replay output wrong:\n%s", out.String())
	}
	// Missing file errors cleanly.
	if err := run([]string{"-trace", filepath.Join(dir, "nope")}, &out, &errb); err == nil {
		t.Error("missing trace file accepted")
	}
}

func writeTestTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return emitTrace(f)
}

func emitTrace(f *os.File) error {
	par := pcmDefaultForTest()
	prof, err := workload.ProfileByName("ferret")
	if err != nil {
		return err
	}
	recs := trace.Generate(prof, 2, 3, par, 500)
	w, err := trace.NewWriter(f, 2, par.LineBytes)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}

func pcmDefaultForTest() pcm.Params { return pcm.DefaultParams() }
