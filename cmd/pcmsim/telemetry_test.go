package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// epochRecord mirrors telemetry.EpochRecord for decoding the JSON-lines
// export independently of the package that wrote it.
type epochRecord struct {
	Epoch   int                `json:"epoch"`
	TimePs  int64              `json:"time_ps"`
	Metrics map[string]float64 `json:"metrics"`
}

// TestTelemetryGoldenSchema runs the bundled trace with every layer
// attached and pins the JSON-lines schema — the record shape plus the
// exact set of series names — against a golden file. Renaming or
// dropping a series is a breaking change for downstream dashboards and
// must show up in review as a golden diff.
func TestTelemetryGoldenSchema(t *testing.T) {
	outDir := t.TempDir()
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "vips", "-scheme", "tetris",
		"-trace", filepath.Join("testdata", "small.trace"),
		"-caches", "-epoch", "10us", "-metrics-out", outDir, "-json"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}

	// Decode the JSON-lines export and collect the schema.
	f, err := os.Open(filepath.Join(outDir, "epochs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seriesSet := map[string]struct{}{}
	var nRecords int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec epochRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %d: %v", nRecords, err)
		}
		if rec.Epoch != nRecords {
			t.Errorf("record %d has epoch %d", nRecords, rec.Epoch)
		}
		if rec.TimePs <= 0 || rec.Metrics == nil {
			t.Errorf("record %d malformed: %+v", nRecords, rec)
		}
		for name := range rec.Metrics {
			seriesSet[name] = struct{}{}
		}
		nRecords++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if nRecords == 0 {
		t.Fatal("epochs.jsonl is empty")
	}

	names := make([]string, 0, len(seriesSet))
	for n := range seriesSet {
		names = append(names, n)
	}
	sort.Strings(names)

	// The acceptance bar: at least 8 series spanning the whole pipeline.
	if len(names) < 8 {
		t.Errorf("only %d series, want >= 8", len(names))
	}
	prefixes := map[string]bool{}
	for _, n := range names {
		p, _, _ := strings.Cut(n, ".")
		prefixes[p] = true
	}
	for _, want := range []string{"cpu", "cache", "memctrl", "pcm", "power"} {
		if !prefixes[want] {
			t.Errorf("no %s.* series in JSON-lines export; have %v", want, prefixes)
		}
	}

	var schema bytes.Buffer
	fmt.Fprintln(&schema, "record:epoch")
	fmt.Fprintln(&schema, "record:metrics")
	fmt.Fprintln(&schema, "record:time_ps")
	for _, n := range names {
		fmt.Fprintf(&schema, "series:%s\n", n)
	}
	golden := filepath.Join("testdata", "epochs_schema.golden")
	if *update {
		if err := os.WriteFile(golden, schema.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(schema.Bytes(), want) {
		t.Errorf("JSON-lines schema drifted from %s (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, schema.String(), want)
	}

	// All three export formats must be present and non-empty.
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	var csvs int
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("export %s is empty", e.Name())
		}
		if strings.HasSuffix(e.Name(), ".csv") {
			csvs++
		}
	}
	if csvs != len(names) {
		t.Errorf("%d CSV files for %d series", csvs, len(names))
	}
	if _, err := os.Stat(filepath.Join(outDir, "metrics.prom")); err != nil {
		t.Errorf("missing Prometheus export: %v", err)
	}

	// The -json report carries the same series as final values.
	var rep struct {
		Telemetry struct {
			Epochs int                `json:"epochs"`
			Final  map[string]float64 `json:"final"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Telemetry.Epochs != nRecords {
		t.Errorf("-json reports %d epochs, export has %d", rep.Telemetry.Epochs, nRecords)
	}
	if len(rep.Telemetry.Final) != len(names) {
		t.Errorf("-json final has %d series, export has %d", len(rep.Telemetry.Final), len(names))
	}
}

// Without telemetry flags the output must not change at all — the
// zero-config path is the compatibility contract.
func TestNoTelemetryFlagsOutputUnchanged(t *testing.T) {
	args := []string{"-workload", "canneal", "-scheme", "dcw", "-instr", "30000"}
	var a, b, errb bytes.Buffer
	if err := run(context.Background(), args, &a, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-epoch", "10us"), &b, &errb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(a.String(), "telemetry") {
		t.Errorf("plain run mentions telemetry:\n%s", a.String())
	}
	if !strings.Contains(b.String(), "telemetry") {
		t.Errorf("-epoch run missing telemetry summary:\n%s", b.String())
	}
	// The measurement lines above the telemetry summary are identical:
	// sampling never perturbs the simulation.
	head := b.String()[:strings.Index(b.String(), "telemetry")]
	if !strings.HasPrefix(a.String(), head) {
		t.Errorf("telemetry changed the report body:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestTelemetryFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-epoch", "banana"},
		{"-epoch", "10"},      // missing unit
		{"-epoch", "-10us"},   // negative
		{"-epoch", "0ns"},     // zero
		{"-metrics-out", "x"}, // needs -epoch
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestAdaptiveTelemetryGoldenSchema pins the scheme-level telemetry the
// adaptive meta-scheme adds to the JSON-lines export: the switch/epoch
// counters, the per-candidate write and cost trackers, and the decorator
// counters of the composed remap layer. Like the main schema golden,
// any rename or drop must surface as a reviewable diff.
func TestAdaptiveTelemetryGoldenSchema(t *testing.T) {
	outDir := t.TempDir()
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-workload", "canneal", "-scheme", "adaptive+remap",
		"-instr", "40000", "-epoch", "10us", "-metrics-out", outDir, "-json"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	f, err := os.Open(filepath.Join(outDir, "epochs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seriesSet := map[string]struct{}{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var nRecords int
	for sc.Scan() {
		var rec epochRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %d: %v", nRecords, err)
		}
		for name := range rec.Metrics {
			seriesSet[name] = struct{}{}
		}
		nRecords++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if nRecords == 0 {
		t.Fatal("epochs.jsonl is empty")
	}

	names := make([]string, 0, len(seriesSet))
	for n := range seriesSet {
		names = append(names, n)
	}
	sort.Strings(names)

	// The adaptive series must be present in every epoch record from the
	// first one — the sampler discovers the set at registration, so no
	// series may appear mid-run.
	for _, want := range []string{
		"scheme.adaptive.switches", "scheme.adaptive.epochs",
		"scheme.adaptive.handovers", "scheme.adaptive.active",
		"scheme.remap.migrations",
	} {
		if _, ok := seriesSet[want]; !ok {
			t.Errorf("series %q missing from export; have %v", want, names)
		}
	}

	var schema bytes.Buffer
	for _, n := range names {
		if strings.HasPrefix(n, "scheme.") {
			fmt.Fprintf(&schema, "series:%s\n", n)
		}
	}
	golden := filepath.Join("testdata", "adaptive_schema.golden")
	if *update {
		if err := os.WriteFile(golden, schema.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(schema.Bytes(), want) {
		t.Errorf("adaptive scheme.* schema drifted from %s (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, schema.String(), want)
	}
}
