// Command pcmsim runs one full-system simulation: one workload, one
// write scheme, and prints the measured latencies, IPC, energy and
// running time.
//
// Usage:
//
//	pcmsim -workload vips -scheme tetris
//	pcmsim -workload canneal -scheme 3stage -instr 2000000 -budget 16
//	pcmsim -workload dedup -scheme tetris -trace dedup.trace
//
// With -trace, operations are replayed from a trace file produced by
// tracegen instead of being generated on the fly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tetriswrite/internal/crash"
	"tetriswrite/internal/fault"
	"tetriswrite/internal/guard"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/prof"
	"tetriswrite/internal/registry"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/system"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/units"
	"tetriswrite/internal/version"
	"tetriswrite/internal/workload"
)

// Scheme names resolve through the shared registry: base schemes and
// their aliases ("baseline", "2stage"), plus composed names like
// "dcw+flipmin" or "tetris+remap". Unknown names fail with the sorted
// catalogue.

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "pcmsim: %v\n", err)
		os.Exit(1)
	}
}

// run executes one simulation with the given arguments; separated from
// main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("pcmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl        = fs.String("workload", "vips", "workload: one of the 8 PARSEC profiles")
		scheme    = fs.String("scheme", "tetris", "write scheme: a registry name (conventional|dcw|fnw|2stage|3stage|tetris|adaptive), composable with +flipmin/+remap/+mlc")
		instr     = fs.Int64("instr", 1_000_000, "instructions per core")
		coresN    = fs.Int("cores", 4, "number of cores")
		seed      = fs.Int64("seed", 1, "workload seed")
		budget    = fs.Int("budget", 32, "per-chip power budget in SET currents (mobile: 4-16)")
		gcp       = fs.Bool("gcp", true, "enable the global charge pump (bank-wide budget sharing)")
		lineBytes = fs.Int("line", 64, "cache line size in bytes")
		banks     = fs.Int("banks", 8, "PCM banks")
		subarrays = fs.Int("subarrays", 1, "subarrays per bank (reads overlap writes when > 1)")
		pausing   = fs.Bool("pausing", false, "let reads pause in-flight writes")
		traceFile = fs.String("trace", "", "replay operations from this trace file")

		faultSeed  = fs.Int64("fault-seed", 0, "seed for the deterministic fault injector (default: workload seed)")
		endurance  = fs.Int64("endurance", 0, "mean per-cell endurance in pulses; 0 disables wear-out")
		endurCV    = fs.Float64("endurance-cv", 0, "coefficient of variation of per-cell endurance (needs -endurance)")
		transient  = fs.Float64("transient-rate", 0, "per-pulse transient write-failure probability in [0,1)")
		verifyN    = fs.Int("verify-retries", 0, "re-pulse budget before a failed write escalates to a hard error (default 3)")
		spareLines = fs.Int("spare", 0, "lines reserved as spares for hard-error remapping (default 64 when faults are on)")

		crashAt = fs.Int64("crash-at", 0, "cut power at the Nth pulse boundary, run crash recovery on the surviving image, and print the recovery report")

		runTO      = fs.Duration("run-timeout", 0, "wall-clock limit for the simulation, e.g. 5m (0 = none)")
		maxEvents  = fs.Uint64("max-events", 0, "abort after this many simulation events (0 = unlimited)")
		maxSimStr  = fs.String("max-simtime", "", "abort past this much simulated time, e.g. 100us (empty = unlimited)")
		guardOn    = fs.Bool("guard", false, "enable the runtime invariant guard (power, coverage, queues, clock)")
		deepChecks = fs.Bool("deep-checks", false, "with -guard, replay every plan on a shadow cell array (exhaustive)")

		engine     = fs.String("engine", "", "event queue implementation: wheel (default) or heap; results are bit-identical")
		engineMode = fs.String("engine-mode", "", "execution mode: serial (default) or parallel (per-bank planning workers); results are bit-identical")
		useCaches  = fs.Bool("caches", false, "interpose the Table II cache hierarchy between cores and memory")
		epochStr   = fs.String("epoch", "", "telemetry sampling interval, e.g. 10us (off when empty)")
		metricsOut = fs.String("metrics-out", "", "directory for telemetry exports: per-series CSV, epochs.jsonl, metrics.prom (needs -epoch)")
		jsonOut    = fs.Bool("json", false, "print the report as JSON instead of text")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		showVer    = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("pcmsim"))
		return nil
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	// Reject nonsense before it turns into a confusing simulation.
	switch {
	case *instr <= 0:
		return fmt.Errorf("-instr %d: instruction budget must be positive", *instr)
	case *coresN <= 0:
		return fmt.Errorf("-cores %d: need at least one core", *coresN)
	case *budget <= 0:
		return fmt.Errorf("-budget %d: power budget must be positive", *budget)
	case *banks <= 0:
		return fmt.Errorf("-banks %d: need at least one bank", *banks)
	case *subarrays <= 0:
		return fmt.Errorf("-subarrays %d: need at least one subarray", *subarrays)
	case *verifyN < 0:
		return fmt.Errorf("-verify-retries %d: retry budget cannot be negative", *verifyN)
	case *spareLines < 0:
		return fmt.Errorf("-spare %d: spare line count cannot be negative", *spareLines)
	case *crashAt < 0:
		return fmt.Errorf("-crash-at %d: pulse boundary must be positive", *crashAt)
	}

	if *deepChecks && !*guardOn {
		return fmt.Errorf("-deep-checks needs -guard")
	}
	queueKind := sim.QueueKind(*engine)
	if !queueKind.Valid() {
		return fmt.Errorf("-engine %q: want wheel or heap", *engine)
	}
	mode := sim.EngineMode(*engineMode)
	if !mode.Valid() {
		return fmt.Errorf("-engine-mode %q: want serial or parallel", *engineMode)
	}
	if *runTO < 0 {
		return fmt.Errorf("-run-timeout %v: cannot be negative", *runTO)
	}

	var epoch units.Duration
	if *epochStr != "" {
		var perr error
		if epoch, perr = units.ParseDuration(*epochStr); perr != nil {
			return fmt.Errorf("-epoch: %w", perr)
		}
	}
	var maxSim units.Duration
	if *maxSimStr != "" {
		var perr error
		if maxSim, perr = units.ParseDuration(*maxSimStr); perr != nil {
			return fmt.Errorf("-max-simtime: %w", perr)
		}
	}
	if *metricsOut != "" && epoch == 0 {
		return fmt.Errorf("-metrics-out needs -epoch to produce any samples")
	}

	entry, err := registry.Default().Resolve(*scheme)
	if err != nil {
		return err
	}
	factory := entry.Factory
	prof, err := workload.ProfileByName(*wl)
	if err != nil {
		return err
	}

	par := pcm.DefaultParams()
	par.ChipBudget = *budget
	par.GlobalChargePump = *gcp
	par.LineBytes = *lineBytes
	par.NumBanks = *banks
	if err := par.Validate(); err != nil {
		return fmt.Errorf("invalid configuration: %w", err)
	}
	ctrlCfg := memctrl.Config{Subarrays: *subarrays, WritePausing: *pausing, VerifyRetries: *verifyN}

	fcfg := fault.Config{
		Seed:          *faultSeed,
		Endurance:     *endurance,
		EnduranceCV:   *endurCV,
		TransientRate: *transient,
	}
	if fcfg.Seed == 0 {
		fcfg.Seed = *seed
	}
	if err := fcfg.Validate(); err != nil {
		return err
	}
	if !fcfg.Enabled() {
		// Flags that only matter under faults are a likely mistake when no
		// failure mode is configured; say so instead of silently ignoring.
		var orphans []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "fault-seed", "endurance-cv", "verify-retries", "spare":
				orphans = append(orphans, "-"+f.Name)
			}
		})
		if len(orphans) > 0 {
			return fmt.Errorf("%s set but no failure mode enabled; add -endurance or -transient-rate",
				strings.Join(orphans, ", "))
		}
	}

	sysCfg := system.Config{
		Params:      par,
		Cores:       *coresN,
		InstrBudget: *instr,
		Seed:        *seed,
		Ctrl:        ctrlCfg,
		Crash:       crash.Config{AtPulse: *crashAt},
		Fault:       fcfg,
		SpareLines:  *spareLines,
		UseCaches:   *useCaches,
		Epoch:       epoch,
		Guard:       guard.Config{Enabled: *guardOn, DeepChecks: *deepChecks},
		MaxEvents:   *maxEvents,
		MaxSimTime:  maxSim,
		EngineQueue: queueKind,
		EngineMode:  mode,
	}

	if *runTO > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTO)
		defer cancel()
	}
	var res system.Result
	if *traceFile != "" {
		res, err = replayTraceFile(ctx, *traceFile, prof.Name, factory, sysCfg)
	} else {
		res, err = system.RunCtx(ctx, prof, factory, sysCfg)
	}
	if err != nil {
		var ce *crash.CutError
		if errors.As(err, &ce) {
			return recoverAndReport(stdout, ce.Image)
		}
		return err
	}
	if *metricsOut != "" {
		if err := res.Telemetry.ExportDir(*metricsOut); err != nil {
			return fmt.Errorf("writing metrics to %s: %w", *metricsOut, err)
		}
		fmt.Fprintf(stderr, "pcmsim: wrote %d series x %d epochs to %s\n",
			len(res.Telemetry.SeriesNames()), res.Telemetry.Epochs(), *metricsOut)
	}
	if *jsonOut {
		return printJSON(stdout, res, par)
	}
	printResult(stdout, res, par)
	return nil
}

// recoverAndReport runs the recovery pass over a power-cut image and
// prints the crash report: the cut context, the crash.* recovery
// counters, and the per-intent classification.
func recoverAndReport(w io.Writer, img *crash.Image) error {
	fmt.Fprintf(w, "power cut      %v (%d pulses issued, %d writes completed)\n",
		img.CutAt, img.PulsesIssued, img.WritesCompleted)
	fmt.Fprintf(w, "intents armed  %d\n", len(img.Intents))
	rep, err := system.Recover(img)
	if err != nil {
		return err
	}
	rep.Stats(func(name string, v float64) {
		fmt.Fprintf(w, "%-24s %.0f\n", name, v)
	})
	for _, l := range rep.Lines {
		fmt.Fprintf(w, "  line %-8d seq %-4d %-12s pulses %d/%d tagfix=%v\n",
			l.Addr, l.Seq, l.Verdict, l.PulsesDone, l.PulsesTotal, l.TagRepaired)
	}
	fmt.Fprintln(w, "recovery complete: every intent line holds its intended data")
	return nil
}

// replayTraceFile loads a trace file and replays it through the platform.
func replayTraceFile(ctx context.Context, path, label string, factory schemes.Factory, cfg system.Config) (system.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return system.Result{}, err
	}
	defer f.Close()
	hdr, recs, err := trace.Parse(f)
	if err != nil {
		return system.Result{}, fmt.Errorf("%s: %w", path, err)
	}
	if int(hdr.LineBytes) != cfg.Params.LineBytes {
		return system.Result{}, fmt.Errorf("%s: trace line size %d B does not match configured -line %d B",
			path, hdr.LineBytes, cfg.Params.LineBytes)
	}
	cfg.Cores = 0 // the trace header, not the flag, decides the core count
	return system.RunTraceCtx(ctx, label, recs, int(hdr.Cores), factory, cfg)
}

func printResult(w io.Writer, res system.Result, par pcm.Params) {
	fmt.Fprintf(w, "workload       %s\n", res.Workload)
	fmt.Fprintf(w, "scheme         %s\n", res.Scheme)
	fmt.Fprintf(w, "running time   %v\n", res.RunningTime)
	fmt.Fprintf(w, "IPC (sum)      %.3f\n", res.IPC)
	fmt.Fprintf(w, "read latency   %v (p99 within histogram resolution: %v)\n",
		res.ReadLatency, res.Ctrl.ReadLatency.Percentile(99))
	fmt.Fprintf(w, "write latency  %v\n", res.WriteLatency)
	fmt.Fprintf(w, "write units    %.3f per line write (baseline: %d)\n", res.WriteUnits, par.DataUnits())
	fmt.Fprintf(w, "memory reads   %d (%d forwarded from the write queue)\n", res.Ctrl.Reads, res.Ctrl.ForwardedReads)
	fmt.Fprintf(w, "memory writes  %d (%d coalesced, %d drains)\n", res.Ctrl.Writes, res.Ctrl.Coalesced, res.Ctrl.Drains)
	fmt.Fprintf(w, "bit pulses     %d SET, %d RESET\n", res.Ctrl.BitSets, res.Ctrl.BitResets)
	fmt.Fprintf(w, "energy         %.0f (SET-current x ns)\n", res.Energy)
	if res.Ctrl.Pauses > 0 || res.Ctrl.SubarrayOverlaps > 0 {
		fmt.Fprintf(w, "overlap        %d pauses, %d subarray overlaps\n",
			res.Ctrl.Pauses, res.Ctrl.SubarrayOverlaps)
	}
	if res.Fault != nil {
		fmt.Fprintf(w, "faults         %d verifies, %d retries, %d transient failures\n",
			res.Ctrl.Verifies, res.Ctrl.Retries, res.Fault.TransientFailures)
		fmt.Fprintf(w, "wear-out       %d stuck cells, %d hard errors\n",
			res.Fault.StuckCells, res.Ctrl.HardErrors)
		if res.Spare != nil {
			fmt.Fprintf(w, "sparing        %d lines remapped, %d spares left, %d exhausted\n",
				res.Spare.RemappedLines, res.Spare.SparesLeft, res.Spare.Exhausted)
		}
		fmt.Fprintf(w, "verify time    %v total bank time\n", res.Ctrl.VerifyOverhead)
	}
	if g := res.Guard; g != nil {
		fmt.Fprintf(w, "guard          %d write plans, %d preset plans, %d queue checks, %d deep replays\n",
			g.WritePlans, g.PresetPlans, g.QueueChecks, g.DeepReplays)
	}
	if s := res.Telemetry; s != nil {
		fmt.Fprintf(w, "telemetry      %d epochs of %v, %d series",
			s.Epochs(), s.EpochDuration(), len(s.SeriesNames()))
		if s.Dropped() > 0 {
			fmt.Fprintf(w, " (%d oldest epochs evicted)", s.Dropped())
		}
		fmt.Fprintln(w)
		if wq := s.Series("memctrl.write_queue_depth"); len(wq) > 0 {
			var sum, max float64
			for _, v := range wq {
				sum += v
				if v > max {
					max = v
				}
			}
			fmt.Fprintf(w, "  write queue  mean %.2f, max %.0f entries over epochs\n", sum/float64(len(wq)), max)
		}
		if bu := s.Series("power.budget_util"); len(bu) > 0 {
			fmt.Fprintf(w, "  budget util  %.4f at end of run\n", bu[len(bu)-1])
		}
	}
}
