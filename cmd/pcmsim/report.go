package main

import (
	"encoding/json"
	"io"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/system"
)

// jsonReport is the machine-readable form of the text report, for
// scripting experiments over pcmsim without scraping its output. Times
// are picoseconds (the simulation's native base) so the values stay
// integral and exact.
type jsonReport struct {
	Workload      string  `json:"workload"`
	Scheme        string  `json:"scheme"`
	RunningTimePs int64   `json:"running_time_ps"`
	IPC           float64 `json:"ipc"`
	ReadLatencyPs int64   `json:"read_latency_ps"`
	WriteLatPs    int64   `json:"write_latency_ps"`
	WriteUnits    float64 `json:"write_units_per_write"`
	BaselineUnits int     `json:"write_units_baseline"`
	Energy        float64 `json:"energy_set_current_ns"`

	Reads          int64 `json:"reads"`
	ForwardedReads int64 `json:"forwarded_reads"`
	Writes         int64 `json:"writes"`
	Coalesced      int64 `json:"coalesced"`
	Drains         int64 `json:"drains"`
	BitSets        int64 `json:"bit_sets"`
	BitResets      int64 `json:"bit_resets"`

	Fault *jsonFault     `json:"fault,omitempty"`
	Guard *jsonGuard     `json:"guard,omitempty"`
	Tele  *jsonTelemetry `json:"telemetry,omitempty"`
}

type jsonGuard struct {
	WritePlans  int64 `json:"write_plans"`
	PresetPlans int64 `json:"preset_plans"`
	QueueChecks int64 `json:"queue_checks"`
	DeepReplays int64 `json:"deep_replays,omitempty"`
}

type jsonFault struct {
	Verifies          int64 `json:"verifies"`
	Retries           int64 `json:"retries"`
	TransientFailures int64 `json:"transient_failures"`
	StuckCells        int64 `json:"stuck_cells"`
	HardErrors        int64 `json:"hard_errors"`
	RemappedLines     int64 `json:"remapped_lines,omitempty"`
	SparesLeft        int   `json:"spares_left,omitempty"`
}

type jsonTelemetry struct {
	Epochs  int                `json:"epochs"`
	EpochPs int64              `json:"epoch_ps"`
	Dropped int                `json:"dropped_epochs,omitempty"`
	Final   map[string]float64 `json:"final"` // last sample of every series
}

// printJSON writes the report as a single indented JSON object.
// encoding/json sorts map keys, so the output is deterministic.
func printJSON(w io.Writer, res system.Result, par pcm.Params) error {
	rep := jsonReport{
		Workload:      res.Workload,
		Scheme:        res.Scheme,
		RunningTimePs: int64(res.RunningTime),
		IPC:           res.IPC,
		ReadLatencyPs: int64(res.ReadLatency),
		WriteLatPs:    int64(res.WriteLatency),
		WriteUnits:    res.WriteUnits,
		BaselineUnits: par.DataUnits(),
		Energy:        res.Energy,

		Reads:          res.Ctrl.Reads,
		ForwardedReads: res.Ctrl.ForwardedReads,
		Writes:         res.Ctrl.Writes,
		Coalesced:      res.Ctrl.Coalesced,
		Drains:         res.Ctrl.Drains,
		BitSets:        res.Ctrl.BitSets,
		BitResets:      res.Ctrl.BitResets,
	}
	if res.Fault != nil {
		rep.Fault = &jsonFault{
			Verifies:          res.Ctrl.Verifies,
			Retries:           res.Ctrl.Retries,
			TransientFailures: res.Fault.TransientFailures,
			StuckCells:        res.Fault.StuckCells,
			HardErrors:        res.Ctrl.HardErrors,
		}
		if res.Spare != nil {
			rep.Fault.RemappedLines = res.Spare.RemappedLines
			rep.Fault.SparesLeft = res.Spare.SparesLeft
		}
	}
	if g := res.Guard; g != nil {
		rep.Guard = &jsonGuard{
			WritePlans:  g.WritePlans,
			PresetPlans: g.PresetPlans,
			QueueChecks: g.QueueChecks,
			DeepReplays: g.DeepReplays,
		}
	}
	if s := res.Telemetry; s != nil {
		final := make(map[string]float64, len(s.SeriesNames()))
		for _, name := range s.SeriesNames() {
			if vals := s.Series(name); len(vals) > 0 {
				final[name] = vals[len(vals)-1]
			}
		}
		rep.Tele = &jsonTelemetry{
			Epochs:  s.Epochs(),
			EpochPs: int64(s.EpochDuration()),
			Dropped: s.Dropped(),
			Final:   final,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
