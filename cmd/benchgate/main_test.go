package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
BenchmarkSchemePlanWrite/tetris-8    218766   5379 ns/op   2944 B/op   26 allocs/op
BenchmarkSchemePlanWrite/dcw-8       500000   2254 ns/op   1200 B/op   37 allocs/op
BenchmarkFullSystemSingle-8              10   5619911 ns/op   2228229 B/op   7362 allocs/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchAggregatesCounts(t *testing.T) {
	in := `BenchmarkX-8   100   200 ns/op   50 B/op   3 allocs/op
BenchmarkX-8   100   180 ns/op   60 B/op   4 allocs/op
BenchmarkY-8   100   99.5 ns/op
`
	res, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	x := res["BenchmarkX"]
	if x == nil || x.runs != 2 || x.nsOp != 180 || x.allocs != 3 || x.bytes != 50 {
		t.Fatalf("BenchmarkX aggregated wrong: %+v", x)
	}
	y := res["BenchmarkY"]
	if y == nil || y.haveMem || y.nsOp != 99.5 {
		t.Fatalf("BenchmarkY parsed wrong: %+v", y)
	}
}

func TestGatePassesWithinBudget(t *testing.T) {
	// 5% ns/op slower, same allocs: inside the 10% budget.
	newOut := strings.ReplaceAll(baseOut, "5379 ns/op", "5640 ns/op")
	old := writeTemp(t, "old.txt", baseOut)
	nw := writeTemp(t, "new.txt", newOut)
	var out, errb strings.Builder
	if err := run([]string{"-old", old, "-new", nw}, &out, &errb); err != nil {
		t.Fatalf("gate failed within budget: %v\n%s", err, out.String())
	}
}

func TestGateFailsOnNsRegression(t *testing.T) {
	newOut := strings.ReplaceAll(baseOut, "5379 ns/op", "6500 ns/op") // +21%
	old := writeTemp(t, "old.txt", baseOut)
	nw := writeTemp(t, "new.txt", newOut)
	var out, errb strings.Builder
	err := run([]string{"-old", old, "-new", nw}, &out, &errb)
	if err == nil {
		t.Fatalf("gate passed a 21%% ns/op regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ns/op") {
		t.Fatalf("failure did not name the ns/op budget:\n%s", out.String())
	}
}

func TestGateFailsOnSingleAllocRegression(t *testing.T) {
	newOut := strings.ReplaceAll(baseOut, "26 allocs/op", "27 allocs/op")
	old := writeTemp(t, "old.txt", baseOut)
	nw := writeTemp(t, "new.txt", newOut)
	var out, errb strings.Builder
	if err := run([]string{"-old", old, "-new", nw}, &out, &errb); err == nil {
		t.Fatalf("strict alloc gate passed a +1 allocs/op regression:\n%s", out.String())
	}
}

func TestSkipNsGatesOnlyAllocs(t *testing.T) {
	// Huge ns/op swing (different machine) but identical allocs: passes
	// with -skip-ns, which is how CI gates against the committed baseline.
	newOut := strings.ReplaceAll(baseOut, "5379 ns/op", "53790 ns/op")
	old := writeTemp(t, "old.txt", baseOut)
	nw := writeTemp(t, "new.txt", newOut)
	var out, errb strings.Builder
	if err := run([]string{"-old", old, "-new", nw, "-skip-ns"}, &out, &errb); err != nil {
		t.Fatalf("-skip-ns still gated ns/op: %v", err)
	}
}

func TestNewBenchmarkPasses(t *testing.T) {
	newOut := baseOut + "BenchmarkBrandNew-8   100   50 ns/op   0 B/op   0 allocs/op\n"
	old := writeTemp(t, "old.txt", baseOut)
	nw := writeTemp(t, "new.txt", newOut)
	var out, errb strings.Builder
	if err := run([]string{"-old", old, "-new", nw}, &out, &errb); err != nil {
		t.Fatalf("new benchmark without a baseline failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "BrandNew") {
		t.Fatalf("new benchmark missing from report:\n%s", out.String())
	}
}

func TestMissingBenchmarkWithRequireAll(t *testing.T) {
	newOut := strings.Join(strings.Split(baseOut, "\n")[:4], "\n") // drop FullSystemSingle
	old := writeTemp(t, "old.txt", baseOut)
	nw := writeTemp(t, "new.txt", newOut)
	var out, errb strings.Builder
	if err := run([]string{"-old", old, "-new", nw}, &out, &errb); err != nil {
		t.Fatalf("missing benchmark failed the gate without -require-all: %v", err)
	}
	if err := run([]string{"-old", old, "-new", nw, "-require-all"}, &out, &errb); err == nil {
		t.Fatal("-require-all passed with a benchmark missing")
	}
}

func TestMatchFilters(t *testing.T) {
	// The regressed benchmark is filtered out, so the gate passes.
	newOut := strings.ReplaceAll(baseOut, "7362 allocs/op", "9999 allocs/op")
	old := writeTemp(t, "old.txt", baseOut)
	nw := writeTemp(t, "new.txt", newOut)
	var out, errb strings.Builder
	if err := run([]string{"-old", old, "-new", nw, "-match", "SchemePlanWrite"}, &out, &errb); err != nil {
		t.Fatalf("filtered gate still failed: %v", err)
	}
	if err := run([]string{"-old", old, "-new", nw}, &out, &errb); err == nil {
		t.Fatal("unfiltered gate missed the alloc regression")
	}
}
