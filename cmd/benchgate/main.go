// Command benchgate compares two `go test -bench` outputs and fails on
// performance regressions. It is the repo's self-contained stand-in for
// benchstat, tuned for gating rather than statistics:
//
//	go test -run='^$' -bench=. -benchmem ./... > new.txt
//	benchgate -old results/bench_baseline.txt -new new.txt
//
// Rules:
//
//   - ns/op may regress by at most -max-ns-regress (default 10%). With
//     -count > 1 in either input, the best (minimum) run per benchmark
//     is used, which discards scheduler noise the way benchstat's
//     distribution tests would.
//   - allocs/op is gated strictly by default (-max-alloc-regress 0):
//     allocation counts are deterministic, so any increase is a real
//     change, not noise. A benchmark that was 0 allocs/op must stay 0.
//   - Benchmarks present only in the new file pass (they have no
//     baseline yet); benchmarks that disappeared are reported but do
//     not fail the gate unless -require-all is set.
//
// ns/op numbers are only comparable between runs on the same machine;
// CI regenerates the baseline from the base commit on the same runner
// instead of trusting a committed one (allocs/op, being deterministic,
// is safe to gate against the committed baseline anywhere).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tetriswrite/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

// result is one benchmark's aggregated measurement: the best run per
// metric when -count produced several.
type result struct {
	name   string
	nsOp   float64
	allocs float64
	bytes  float64
	// haveMem records whether -benchmem columns were present; without
	// them the alloc gate is skipped for this benchmark.
	haveMem bool
	runs    int
}

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkSchemePlanWrite/tetris-8   218766   5379 ns/op   2944 B/op   26 allocs/op
//
// Custom -benchtime or extra ReportMetric columns may follow; they are
// scanned separately.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var memCol = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)

// parseBench reads `go test -bench` output, aggregating repeated runs of
// the same benchmark (from -count) by taking the minimum per metric.
func parseBench(r io.Reader) (map[string]*result, error) {
	out := make(map[string]*result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		res := &result{name: m[1], nsOp: ns, allocs: -1, bytes: -1}
		for _, c := range memCol.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(c[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s in %q: %v", c[2], sc.Text(), err)
			}
			switch c[2] {
			case "B/op":
				res.bytes = v
			case "allocs/op":
				res.allocs = v
				res.haveMem = true
			}
		}
		prev, ok := out[res.name]
		if !ok {
			res.runs = 1
			out[res.name] = res
			continue
		}
		prev.runs++
		prev.nsOp = min(prev.nsOp, res.nsOp)
		if res.haveMem {
			if !prev.haveMem || res.allocs < prev.allocs {
				prev.allocs = res.allocs
			}
			if !prev.haveMem || res.bytes < prev.bytes {
				prev.bytes = res.bytes
			}
			prev.haveMem = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return res, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		oldPath    = fs.String("old", "", "baseline `go test -bench` output (required)")
		newPath    = fs.String("new", "", "candidate `go test -bench` output (required)")
		maxNs      = fs.Float64("max-ns-regress", 0.10, "maximum allowed fractional ns/op regression")
		maxAlloc   = fs.Float64("max-alloc-regress", 0, "maximum allowed absolute allocs/op increase")
		match      = fs.String("match", "", "regexp: gate only matching benchmark names (default all)")
		skipNs     = fs.Bool("skip-ns", false, "gate only allocs/op (use when old/new ran on different machines)")
		requireAll = fs.Bool("require-all", false, "fail if a baseline benchmark is missing from the new output")
		showVer    = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String("benchgate"))
		return nil
	}
	if *oldPath == "" || *newPath == "" {
		fs.Usage()
		return fmt.Errorf("both -old and -new are required")
	}
	var filter *regexp.Regexp
	if *match != "" {
		var err error
		if filter, err = regexp.Compile(*match); err != nil {
			return fmt.Errorf("bad -match: %v", err)
		}
	}
	olds, err := parseFile(*oldPath)
	if err != nil {
		return err
	}
	news, err := parseFile(*newPath)
	if err != nil {
		return err
	}
	if len(news) == 0 {
		return fmt.Errorf("%s contains no benchmark results", *newPath)
	}

	names := make([]string, 0, len(news))
	for name := range news {
		if filter == nil || filter.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	failures := 0
	w := func(format string, a ...any) { fmt.Fprintf(stdout, format, a...) }
	w("%-52s %12s %12s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, name := range names {
		nw := news[name]
		od, ok := olds[name]
		if !ok {
			w("%-52s %12s %12.0f %8s  %s\n", trim(name), "-", nw.nsOp, "new", allocCell(nw, nil))
			continue
		}
		delta := nw.nsOp/od.nsOp - 1
		verdicts := []string{}
		if !*skipNs && delta > *maxNs {
			verdicts = append(verdicts, fmt.Sprintf("ns/op +%.1f%% > +%.1f%% budget", delta*100, *maxNs*100))
		}
		if od.haveMem && nw.haveMem && nw.allocs > od.allocs+*maxAlloc {
			verdicts = append(verdicts, fmt.Sprintf("allocs/op %g > %g", nw.allocs, od.allocs+*maxAlloc))
		}
		status := ""
		if len(verdicts) > 0 {
			failures++
			status = "  FAIL: " + strings.Join(verdicts, "; ")
		}
		w("%-52s %12.0f %12.0f %+7.1f%%  %s%s\n", trim(name), od.nsOp, nw.nsOp, delta*100, allocCell(nw, od), status)
	}
	for name := range olds {
		if _, ok := news[name]; ok || (filter != nil && !filter.MatchString(name)) {
			continue
		}
		if *requireAll {
			failures++
			w("%-52s missing from new output  FAIL\n", trim(name))
		} else {
			fmt.Fprintf(stderr, "benchgate: %s present in baseline but not in new output\n", name)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed", failures)
	}
	w("benchgate: %d benchmark(s) within budget\n", len(names))
	return nil
}

func allocCell(nw, od *result) string {
	if !nw.haveMem {
		return "-"
	}
	if od == nil || !od.haveMem {
		return fmt.Sprintf("%g", nw.allocs)
	}
	return fmt.Sprintf("%g -> %g", od.allocs, nw.allocs)
}

// trim keeps long subbenchmark names readable in the fixed-width table.
func trim(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if len(name) > 52 {
		name = name[:49] + "..."
	}
	return name
}
