// Package tetriswrite is a bit-accurate simulator of PCM (Phase Change
// Memory) cache-line write scheduling, built around a from-scratch
// implementation of the Tetris Write scheme (Li et al., "Tetris Write:
// Exploring More Write Parallelism Considering PCM Asymmetries",
// ICPP 2016) and of the schemes it is evaluated against: DCW,
// Flip-N-Write, 2-Stage-Write and Three-Stage-Write.
//
// The package offers three levels of use:
//
//   - Scheme level: build a write scheme with NewScheme and plan
//     individual cache-line writes; every plan is a bit-exact pulse
//     schedule whose timing, energy and power draw can be inspected.
//   - System level: RunSystem simulates the paper's full platform — four
//     2 GHz cores running a PARSEC-calibrated synthetic workload against
//     a read-priority memory controller and 8 banks of SLC PCM.
//   - Evaluation level: RunEvaluation and the Figure/Table helpers
//     regenerate every figure and table of the paper's evaluation
//     section.
//
// The implementation is pure Go with no dependencies outside the
// standard library, and every simulation is deterministic given its
// seed.
package tetriswrite

import (
	"fmt"

	"tetriswrite/internal/exp"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/registry"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/system"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// Re-exported core types. The implementation lives under internal/; these
// aliases are the supported public surface.
type (
	// Params is the PCM device configuration (the paper's Table II).
	Params = pcm.Params
	// Device is the stateful PCM array with energy accounting.
	Device = pcm.Device
	// LineAddr addresses one cache line of the device.
	LineAddr = pcm.LineAddr
	// Scheme plans cache-line writes; all five schemes implement it.
	Scheme = schemes.Scheme
	// Plan is a bit-exact pulse schedule for one cache-line write.
	Plan = schemes.Plan
	// TetrisOptions tune the Tetris Write implementation (ablations).
	TetrisOptions = tetris.Options
	// Workload is a PARSEC-calibrated synthetic workload profile.
	Workload = workload.Profile
	// SystemConfig configures a full-system simulation.
	SystemConfig = system.Config
	// SystemResult is the outcome of one full-system simulation.
	SystemResult = system.Result
	// EvalOptions configure the figure/table experiment harness.
	EvalOptions = exp.Options
	// EvalResults holds a full 8-workload x 5-scheme sweep.
	EvalResults = exp.FullResults
	// Duration is simulated time in picoseconds.
	Duration = units.Duration
)

// DefaultParams returns the paper's Table II configuration.
func DefaultParams() Params { return pcm.DefaultParams() }

// NewDevice creates a PCM device.
func NewDevice(p Params) (*Device, error) { return pcm.NewDevice(p) }

// SchemeNames returns the canonical base scheme names accepted by
// NewScheme, sorted. Aliases ("baseline", "2stage") and composed names
// ("dcw+flipmin", "tetris+remap") also resolve; see internal/registry
// for the composition grammar.
func SchemeNames() []string { return registry.Default().Bases() }

// SchemeDecorators returns the decorator names composable onto any base
// scheme with '+', sorted.
func SchemeDecorators() []string { return registry.Default().Decorators() }

// NewScheme builds a write scheme by name: a canonical base name, an
// alias (baseline, flip-n-write, 2stage, 3stage) or a '+'-composed name
// such as "dcw+flipmin+remap". Unknown names fail with the sorted
// catalogue.
func NewScheme(name string, par Params) (Scheme, error) {
	e, err := registry.Default().Resolve(name)
	if err != nil {
		return nil, fmt.Errorf("tetriswrite: %w", err)
	}
	if err := par.Validate(); err != nil {
		return nil, err
	}
	return e.Factory(par), nil
}

// NewTetris builds the Tetris Write scheme with explicit options, for
// ablation studies (flip coding off, arrival-order packing, custom
// analysis overhead).
func NewTetris(par Params, opt TetrisOptions) (Scheme, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	return tetris.NewWithOptions(par, opt), nil
}

// Workloads returns the eight PARSEC-calibrated workload profiles of the
// paper's Table III.
func Workloads() []Workload { return workload.Profiles() }

// WorkloadByName returns the named workload profile.
func WorkloadByName(name string) (Workload, error) { return workload.ProfileByName(name) }

// RunSystem simulates one workload under one scheme on the paper's
// 4-core platform and returns the measured latencies, IPC, energy and
// running time.
func RunSystem(workloadName, schemeName string, cfg SystemConfig) (SystemResult, error) {
	prof, err := workload.ProfileByName(workloadName)
	if err != nil {
		return SystemResult{}, err
	}
	e, err := registry.Default().Resolve(schemeName)
	if err != nil {
		return SystemResult{}, fmt.Errorf("tetriswrite: %w", err)
	}
	f := e.Factory
	if cfg.Params.LineBytes == 0 {
		cfg.Params = DefaultParams()
	}
	res, err := system.Run(prof, f, cfg)
	if err != nil {
		return SystemResult{}, err
	}
	res.Scheme = schemeName
	return res, nil
}

// RunEvaluation runs the full 8-workload x 5-scheme sweep behind
// Figures 11-14. Use the returned results' Figure11..Figure14 and
// EnergyTable methods to render the tables.
func RunEvaluation(opt EvalOptions) (*EvalResults, error) { return exp.RunFullSystem(opt) }

// Figure3 renders the paper's Figure 3: RESET/SET operations per 64-bit
// data unit after inversion, per workload.
func Figure3(opt EvalOptions) string { return exp.Figure3(opt).String() }

// Table3 renders the paper's Table III: workload characteristics.
func Table3(opt EvalOptions) string { return exp.Table3(opt).String() }

// Figure10 renders the paper's Figure 10: average number of write units
// per scheme and workload.
func Figure10(opt EvalOptions) string { return exp.Figure10(opt).String() }

// Figure4 renders the paper's Figure 4: the chip-level timing diagram of
// all five schemes on the worked example of Section III.
func Figure4(par Params) string { return exp.Figure4(par) }

// LineSizeSweep renders the line-size sweep (64/128/256 B — the paper's
// POWER7/zEnterprise motivation) in Figure 10 units.
func LineSizeSweep(opt EvalOptions) string { return exp.LineSizeSweep(opt).String() }

// BudgetSweep renders the mobile power-budget sweep (32 down to 4
// SET-currents per chip) in Figure 10 units.
func BudgetSweep(opt EvalOptions) string { return exp.BudgetSweep(opt).String() }

// Endurance renders the wear/endurance table: bit-writes and hottest-line
// wear per scheme, with and without Start-Gap wear leveling.
func Endurance(opt EvalOptions) (string, error) {
	tb, err := exp.EnduranceTable(opt)
	if err != nil {
		return "", err
	}
	return tb.String(), nil
}

// CheckResult is one verified qualitative claim of the reproduction.
type CheckResult = exp.CheckResult

// Check runs the reproduction certificate: every qualitative claim the
// reproduction makes about the paper's figures, verified at the given
// scale.
func Check(opt EvalOptions) ([]CheckResult, error) { return exp.CheckShapes(opt) }
